"""Decentralized, load-balanced slab placement (§4.4).

Hydra avoids a central allocator: to back an address range, the Resilience
Manager contacts ``2 x (k + r)`` randomly chosen machines ("the generalized
power of many choices"), asks each for its current memory load, and maps
slabs on the least-loaded ``k + r`` of them — *batch placement*. §5.3 shows
that combining this with the k-way splitting of pages drives the cluster's
memory-load imbalance down to O(log log n / (k log(d/k))).

Placement also enforces the failure-domain rule: the slabs of one range go
to machines in distinct racks whenever the cluster has enough racks.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..sim import RandomSource
from .address_space import SlabHandle
from .config import HydraConfig
from .rpc import RpcEndpoint, RpcError

__all__ = ["PlacementError", "BatchPlacer"]


class PlacementError(Exception):
    """Not enough healthy machines/memory to place the requested slabs."""


class BatchPlacer:
    """Implements batch placement for one Resilience Manager.

    Parameters
    ----------
    endpoint:
        The local machine's RPC endpoint (queries travel as control
        messages, keeping the mechanism decentralized).
    peer_provider:
        Zero-arg callable returning the ids of currently alive peers.
        Membership is assumed known (gossip in a real deployment).
    """

    def __init__(
        self,
        endpoint: RpcEndpoint,
        peer_provider,
        config: HydraConfig,
        rng: RandomSource,
    ):
        self.endpoint = endpoint
        self.peer_provider = peer_provider
        self.config = config
        self.rng = rng

    # -- public (generator) API ---------------------------------------------
    def place_range(self, range_id: int):
        """Simulation process: place (k + r) slabs for a new range.

        Returns a list of ``k + r`` :class:`SlabHandle`, ordered by split
        position. Raises :class:`PlacementError` if the cluster cannot host
        the range on distinct machines.
        """
        n = self.config.n
        loads = yield from self._survey(exclude=set(), minimum=n)
        chosen = self._select(loads, count=n)
        handles: List[SlabHandle] = []
        used: Set[int] = set()
        for position, machine_id in enumerate(chosen):
            handle = yield from self._map_one(
                machine_id, range_id, position, loads, used
            )
            handles.append(handle)
            used.add(handle.machine_id)
        return handles

    def place_single(self, range_id: int, position: int, exclude: Set[int]):
        """Simulation process: find one machine for a regenerated slab.

        ``exclude`` holds machines already hosting slabs of this range.
        Returns the chosen machine id (the regeneration hand-off itself is
        done by the caller, §4.4 'Background Slab Regeneration').
        """
        loads = yield from self._survey(exclude=exclude, minimum=1)
        chosen = self._select(loads, count=1)
        return chosen[0]

    # -- internals -------------------------------------------------------------
    def _survey(self, exclude: Set[int], minimum: int):
        """Query ``2 x (k + r)`` random candidates for their memory load."""
        peers = [p for p in self.peer_provider() if p not in exclude]
        if len(peers) < minimum:
            raise PlacementError(
                f"only {len(peers)} candidate machines, need {minimum}"
            )
        contact_count = min(
            len(peers), self.config.placement_choice_factor * self.config.n
        )
        candidates = self.rng.sample(peers, contact_count)
        replies = []
        for candidate in candidates:
            replies.append((candidate, self.endpoint.call(candidate, "query_load")))
        loads: Dict[int, dict] = {}
        for candidate, reply in replies:
            try:
                body = yield reply
            except RpcError:
                continue  # candidate died mid-survey; skip it
            loads[candidate] = body
        if len(loads) < minimum:
            raise PlacementError(
                f"{len(loads)} of {len(candidates)} load queries answered, "
                f"need {minimum}"
            )
        return loads

    def _select(self, loads: Dict[int, dict], count: int) -> List[int]:
        """Least-loaded ``count`` machines, distinct racks when possible.

        Ties are broken randomly: many managers placing concurrently with
        deterministic tie-breaking would herd onto the same machines.
        """
        by_load = sorted(
            loads, key=lambda m: (loads[m]["utilization"], self.rng.random())
        )
        chosen: List[int] = []
        racks_used: Set[int] = set()
        # First pass: respect the failure-domain constraint.
        for machine_id in by_load:
            if len(chosen) == count:
                break
            rack = loads[machine_id].get("rack")
            if rack in racks_used:
                continue
            chosen.append(machine_id)
            racks_used.add(rack)
        # Second pass: relax rack-distinctness if the cluster is too small.
        for machine_id in by_load:
            if len(chosen) == count:
                break
            if machine_id not in chosen:
                chosen.append(machine_id)
        if len(chosen) < count:
            raise PlacementError(
                f"could not select {count} machines from {len(loads)} replies"
            )
        return chosen

    def _map_one(
        self,
        machine_id: int,
        range_id: int,
        position: int,
        loads: Dict[int, dict],
        used: Set[int],
    ):
        """Ask one machine's Resource Monitor to map a slab; fall back to
        the next-least-loaded unused candidate on refusal."""
        fallbacks = [m for m in sorted(loads, key=lambda m: loads[m]["utilization"])]
        tried: Set[int] = set()
        order = [machine_id] + [m for m in fallbacks if m != machine_id]
        for target in order:
            if target in tried or target in used:
                continue
            tried.add(target)
            try:
                body = yield self.endpoint.call(
                    target,
                    "map_slab",
                    {"range_id": range_id, "position": position},
                )
            except RpcError:
                continue
            return SlabHandle(machine_id=target, slab_id=body["slab_id"])
        raise PlacementError(
            f"no candidate machine accepted slab for range {range_id} "
            f"position {position}"
        )
