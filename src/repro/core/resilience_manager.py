"""The Hydra Resilience Manager (§3.1, §4) — the client-side data path.

One Resilience Manager runs on every machine that consumes remote memory.
It owns a remote address space (ranges of (k + r) slabs placed via batch
placement), erasure-codes each 4 KB page individually, and implements the
four data-path techniques of §4.2:

* **asynchronously encoded writes** — data splits are written first and
  the write returns to the application after their k acks; parities are
  encoded and written in the background;
* **late-binding reads** — (k + Δ) splits are requested in parallel and
  the read completes at the k-th *valid* arrival, cutting straggler tails;
* **run-to-completion** and **in-place coding** — modeled as host-side
  overheads that vanish when the toggles are on (see
  :mod:`repro.core.datapath`).

It also implements the §4.3 uncertainty machinery: disconnect-driven slab
failover, eviction notices, corruption detection/correction with
per-machine error accounting (ErrorCorrectionLimit /
SlabRegenerationLimit), and background slab regeneration hand-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..cluster import PhantomSplit
from ..ec import CorruptionDetected, DecodeError, PageCodec, reencode_split_pages
from ..net import RdmaFabric
from ..obs import MetricsRegistry, Span, Tracer
from ..sim import Event, RandomSource, Simulator, Timeout
from .address_space import AddressRange, RemoteAddressSpace, SlabHandle
from .config import HydraConfig
from .datapath import (
    completion_overhead_us,
    decode_latency_us,
    encode_latency_us,
    issue_overhead_us,
)
from .placement import BatchPlacer, PlacementError
from .rpc import RpcEndpoint, RpcError

__all__ = ["HydraError", "RemoteMemoryUnavailable", "ResilienceManager"]

_WRITE_RETRY_LIMIT = 10
_WRITE_RETRY_BACKOFF_US = 100.0
_REGEN_TIMEOUT_US = 5_000_000.0  # give up on a silent regeneration target


class _SplitGather:
    """Collects split-read completions with callback accounting.

    The read path posts (k + Δ) reads and needs to wake up exactly when
    the k-th *valid* split lands (late binding) — and, for verification,
    when everything has landed. Doing this with one callback per read and
    one waiter event per wait keeps the event count per page read small.
    """

    __slots__ = (
        "sim",
        "validator",
        "arrivals",
        "valid",
        "order",
        "posted",
        "outstanding",
        "_need",
        "_waiter",
        "_all_waiter",
    )

    def __init__(self, sim: Simulator, validator):
        self.sim = sim
        self.validator = validator
        self.arrivals: Dict[int, object] = {}
        self.valid: Dict[int, object] = {}
        self.order: List[int] = []  # valid splits in arrival order
        self.posted: Set[int] = set()
        self.outstanding = 0
        self._need = 0
        self._waiter: Optional[Event] = None
        self._all_waiter: Optional[Event] = None

    def post(self, position: int, event: Event) -> None:
        """Track one in-flight split read."""
        self.posted.add(position)
        self.outstanding += 1

        def on_done(done: Event, position=position) -> None:
            self.outstanding -= 1
            payload = done._value if done._ok else None
            self.arrivals[position] = payload
            if self.validator(payload):
                self.valid[position] = payload
                self.order.append(position)
            self._fire()

        if event.processed:
            on_done(event)
        else:
            event.callbacks.append(on_done)

    def wait_valid(self, need: int) -> Event:
        """An event firing when ``need`` valid splits have arrived — or
        when nothing is outstanding anymore (caller decides to escalate)."""
        self._need = need
        waiter = self._waiter = self.sim.event(name="gather-valid")
        self._fire()  # may clear the slot and fire synchronously
        return waiter

    def wait_all(self) -> Event:
        """An event firing once every posted read has completed."""
        waiter = self._all_waiter = self.sim.event(name="gather-all")
        self._fire()  # may clear the slot and fire synchronously
        return waiter

    def _fire(self) -> None:
        # Detach each waiter before delivering: succeed_now resumes the
        # waiting process synchronously, which may re-register a fresh
        # waiter (escalation loop) — the slot must already be clear.
        waiter = self._waiter
        if waiter is not None and (
            len(self.valid) >= self._need or self.outstanding == 0
        ):
            self._waiter = None
            waiter.succeed_now()
        all_waiter = self._all_waiter
        if all_waiter is not None and self.outstanding == 0:
            self._all_waiter = None
            all_waiter.succeed_now()

    def first_valid(self, count: int) -> Dict[int, object]:
        """The first ``count`` valid splits in arrival order — exactly what
        survives the in-place buffer after MR deregistration."""
        return {p: self.valid[p] for p in self.order[:count]}

    def real_payloads(self) -> Dict[int, np.ndarray]:
        return {
            p: payload
            for p, payload in self.arrivals.items()
            if isinstance(payload, np.ndarray)
        }


class HydraError(Exception):
    """Base error of the resilience layer."""


class RemoteMemoryUnavailable(HydraError):
    """Fewer than k splits of a page are reachable — data is lost or the
    cluster lacks capacity."""


class ResilienceManager:
    """Erasure-coded remote memory for one client machine.

    The public interface is the remote-memory-pool protocol shared with
    the baselines: :meth:`write` and :meth:`read` return simulation
    processes; ``yield`` them from workload code.
    """

    name = "hydra"

    def __init__(
        self,
        sim: Simulator,
        fabric: RdmaFabric,
        machine_id: int,
        config: HydraConfig,
        endpoint: RpcEndpoint,
        placer: BatchPlacer,
        rng: RandomSource,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.machine_id = machine_id
        self.config = config
        self.endpoint = endpoint
        self.placer = placer
        self.rng = rng
        self.codec = PageCodec(config.k, config.r, page_size=config.page_size)
        self.space = RemoteAddressSpace(config.pages_per_range)

        # Phantom-mode page versions; also used in real mode for bookkeeping.
        self._versions: Dict[int, int] = {}
        # Real-mode golden copies are NOT kept: reads decode remote bytes.
        self._inflight_writes: Dict[int, Event] = {}
        self._placements_pending: Dict[int, Event] = {}
        self._regenerating: Set[Tuple[int, int]] = set()
        self._regen_waiters: Dict[Tuple[int, int], Event] = {}
        # Pages written while a split position was unavailable: their split
        # at that position must be re-written once the slab is back
        # (regeneration rebuilds from a snapshot and misses them). The
        # entry buffers the page *content* at write time so catch-up never
        # depends on a read that could itself race other repairs.
        self._catchup: Dict[Tuple[int, int], Dict[int, Tuple[int, object]]] = {}
        # Per-machine suspicion scores (§4.3): +1 per localized corruption,
        # +1/m smeared when localization was impossible.
        self.error_scores: Dict[int, float] = {}
        self._watched_machines: Set[int] = set()
        # Slots with a regeneration retry timer pending: _regenerating
        # covers an in-flight regeneration, this covers the backoff window
        # between attempts — together they make duplicate regenerations
        # for one (range, position) structurally impossible.
        self._regen_retry_pending: Set[Tuple[int, int]] = set()
        # Replicated metadata store (repro.core.rm_replica.ControlPlane
        # attaches one when HydraConfig.metadata_replicas > 0). With no
        # store every hook below is a single `is not None` check.
        self._meta = None
        # Fenced: this RM's leadership epoch is over (it lost its metadata
        # quorum, or its machine crashed and a peer took over). A fenced
        # RM refuses all client traffic and starts no new repairs.
        self._fenced = False
        # (machine, qp) per remote id — both are stable registry objects;
        # caching them here turns two fabric lookups per posted split into
        # one dict hit.
        self._endpoints: Dict[int, tuple] = {}
        # Passive observers (chaos invariant checkers, repro.chaos): every
        # hook site is guarded by `if self._observers`, so the happy path
        # costs one truthiness check per request when none are registered.
        self._observers: List[object] = []
        # Fault injection for the chaos engine's self-test: silently drop
        # every asynchronous parity write while still reporting the write
        # durable. MUST stay False outside `repro chaos --inject-bug`.
        self.debug_drop_parity = False

        # Observability: by default the RM joins the cluster-wide bundle on
        # the fabric; explicit tracer/metrics override for isolated tests.
        obs = getattr(fabric, "obs", None)
        if tracer is None:
            tracer = obs.tracer if obs is not None else Tracer(sim, sample_every=0)
        if metrics is None:
            metrics = obs.metrics if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics
        self.read_latency = metrics.latency(f"rm.{machine_id}.read")
        self.write_latency = metrics.latency(f"rm.{machine_id}.write")
        self.events = metrics.counter_group(f"rm.{machine_id}.events")
        # Completions per 1-second window — throughput-over-time for the
        # dashboard / Fig 2-style timelines without retaining per-op data.
        self.ops_window = metrics.throughput(f"rm.{machine_id}.ops")
        # Plan-cache pressure is an operator signal: steady evictions mean
        # the erasure-pattern working set exceeds the LRU capacity and
        # decode plans are being recompiled on the hot path.
        self.codec.code.plan_cache.bind_eviction_counter(
            metrics.counter(f"rm.{machine_id}.ec.plan_evictions")
        )

        # Datapath overhead constants: pure functions of the construction-
        # time config, computed once so the per-op yields reuse the floats
        # (bit-identical to calling the helpers each time).
        dp = config.datapath
        self._issue_us: Dict[int, float] = {}
        self._completion_k_us = completion_overhead_us(dp, config.k)
        self._encode_us = encode_latency_us(config)
        self._decode_us = decode_latency_us(config)

        endpoint.register("evict_slab", self._on_evict_notice)
        endpoint.register("slab_regenerated", self._on_slab_regenerated)

    # ==================================================================
    # observer hooks (repro.chaos invariant checkers)
    # ==================================================================
    def add_observer(self, observer: object) -> None:
        """Register a passive observer of the RM's lifecycle events.

        Observers may implement any subset of: ``on_write_acked(page_id,
        version, data)``, ``on_write_durable(page_id, version)``,
        ``on_read_done(page_id, version, data, start_us)``,
        ``on_read_failed(page_id)``, ``on_regen_start(range_id, position)``
        and ``on_regen_end(range_id, position, outcome)``. Hooks are
        best-effort notifications; they must not mutate RM state.
        """
        self._observers.append(observer)

    def remove_observer(self, observer: object) -> None:
        self._observers.remove(observer)

    def _notify(self, method: str, *args) -> None:
        for observer in self._observers:
            fn = getattr(observer, method, None)
            if fn is not None:
                fn(*args)

    # ==================================================================
    # replicated metadata (repro.core.rm_replica)
    # ==================================================================
    def attach_metadata_store(self, store) -> None:
        """Bind the replicated metadata log this RM commits through."""
        self._meta = store

    @property
    def fenced(self) -> bool:
        return self._fenced

    def fence(self, reason: str = "fenced") -> None:
        """End this RM's leadership epoch: refuse new client traffic and
        unblock readers ordered behind writes that can no longer ack."""
        if self._fenced:
            return
        self._fenced = True
        self.events.incr("fenced")
        if self._meta is not None:
            self._meta.fence(reason)
        for event in list(self._inflight_writes.values()):
            if not event.triggered:
                event.succeed_now()

    def _mark_failed(self, address_range: AddressRange, position: int) -> None:
        """Mark a slab unavailable, replicating the transition so a
        failover sees the same degraded slab map this RM does."""
        address_range.mark_failed(position)
        if self._meta is not None:
            self._meta.append(
                "position_failed",
                range_id=address_range.range_id,
                position=position,
            )
            self._meta.commit_async()

    # ==================================================================
    # public pool interface
    # ==================================================================
    def write(self, page_id: int, data: Optional[bytes] = None, parent: Optional[Span] = None):
        """Write a page to remote memory; returns a simulation process.

        ``data`` must be ``page_size`` bytes in real mode and is ignored in
        phantom mode. The process completes when the write returns to the
        application (k data-split acks on the fast path); full (k + r)
        durability lands shortly after via the asynchronous parity writes.
        ``parent`` (a sampled span, e.g. a VMM fault) adopts this request
        into an existing trace; otherwise the tracer's sampler decides.
        """
        span = self._request_span("rm.write", page_id, parent)
        return self.sim.process(
            self._traced(self._write_process(page_id, data, span), span),
            name=f"hydra-write:{page_id}",
        )

    def read(self, page_id: int, parent: Optional[Span] = None):
        """Read a page back; the process's value is the page bytes (real
        mode) or ``None`` (phantom mode)."""
        span = self._request_span("rm.read", page_id, parent)
        return self.sim.process(
            self._traced(self._read_process(page_id, span), span),
            name=f"hydra-read:{page_id}",
        )

    def _request_span(self, name: str, page_id: int, parent: Optional[Span]) -> Optional[Span]:
        if parent is not None:
            return parent.child(
                name, cat="request", machine_id=self.machine_id, tags={"page": page_id}
            )
        return self.tracer.start_trace(
            name, machine_id=self.machine_id, tags={"page": page_id}
        )

    def _traced(self, gen, span: Optional[Span]):
        """Wrap a request generator so its span always finishes, tagging
        the outcome; a no-op passthrough when the request is untraced."""
        if span is None:
            return gen
        return self._traced_gen(gen, span)

    @staticmethod
    def _traced_gen(gen, span: Span):
        try:
            result = yield from gen
        except BaseException as exc:
            span.tags.setdefault("error", type(exc).__name__)
            span.finish()
            raise
        span.set_tag("outcome", "ok")
        span.finish()
        return result

    @property
    def memory_overhead(self) -> float:
        return self.config.memory_overhead

    @property
    def open_regen_count(self) -> int:
        """Regenerations currently in flight — the health monitor's
        regeneration-backlog SLO input."""
        return len(self._regenerating)

    def remote_pages(self) -> int:
        """Pages currently tracked in remote memory."""
        return len(self._versions)

    # ==================================================================
    # write path (§4.2.1)
    # ==================================================================
    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        config = self.config
        dp = config.datapath
        phases = self.tracer.phases(span)
        start = self.sim.now
        if self._fenced:
            self.events.incr("fenced_writes")
            raise RemoteMemoryUnavailable(
                f"resilience manager {self.machine_id} is fenced"
            )
        # Placement can transiently fail under cluster-wide memory
        # pressure; back off and retry before giving up.
        address_range = None
        for attempt in range(_WRITE_RETRY_LIMIT):
            try:
                address_range, offset = yield from self._resolve(page_id)
                break
            except PlacementError:
                self.events.incr("placement_retries")
                yield self.sim.timeout(_WRITE_RETRY_BACKOFF_US * 4 * (attempt + 1))
        phases.mark("place")
        if address_range is None:
            self.events.incr("write_failures")
            raise RemoteMemoryUnavailable(
                f"no placement for page {page_id} after {_WRITE_RETRY_LIMIT} tries"
            )
        version = self._versions.get(page_id, 0) + 1

        # Write-ahead metadata: the intent (and any slab-map records the
        # placement just appended) must reach a majority of the metadata
        # replica set before any split is posted, so a failover can tell a
        # torn write from a never-started one.
        if self._meta is not None:
            self._meta.append("write_intent", page_id=page_id, version=version)
            if not (yield from self._meta.commit_ok()):
                self.events.incr("meta_commit_failures")
                raise RemoteMemoryUnavailable(
                    f"metadata quorum unavailable for write of page {page_id}"
                )

        if config.payload_mode == "real":
            if data is None or len(data) != config.page_size:
                raise HydraError(
                    f"real mode write needs {config.page_size} bytes of data"
                )
            data_splits = self.codec.split(data)
        else:
            data_splits = None

        full_done = self.sim.event(name=f"write-durable:{page_id}")
        self._inflight_writes[page_id] = full_done

        def _finish_inflight(_event: Event) -> None:
            if self._inflight_writes.get(page_id) is full_done:
                del self._inflight_writes[page_id]

        full_done.callbacks.append(_finish_inflight)

        for attempt in range(_WRITE_RETRY_LIMIT):
            if self._fenced:
                break
            available = address_range.available_positions()
            slots = address_range.slots
            fast_path = dp.async_encoding and all(
                handle.available for handle in slots[: config.k]
            )
            # Only verbs on the critical path cost posting time: the fast
            # path returns after the k data-split writes (parities are
            # posted asynchronously).
            critical_posts = config.k if fast_path else max(1, len(available))
            issue_us = self._issue_us.get(critical_posts)
            if issue_us is None:
                issue_us = self._issue_us[critical_posts] = issue_overhead_us(
                    dp, critical_posts
                )
            yield Timeout(self.sim, issue_us)
            phases.mark("issue")
            try:
                if fast_path:
                    yield from self._write_fast(
                        address_range, offset, page_id, version, data_splits,
                        full_done, span, phases,
                    )
                else:
                    yield from self._write_degraded(
                        address_range, offset, page_id, version, data_splits,
                        available, full_done, span, phases,
                    )
            except RemoteMemoryUnavailable:
                self.events.incr("write_retries")
                # Probe the range: any position on an unreachable machine
                # is marked failed here (belt and braces — the disconnect
                # listener normally does this first).
                for position in address_range.available_positions():
                    handle = address_range.handle(position)
                    if not self.fabric.reachable(self.machine_id, handle.machine_id):
                        self._mark_failed(address_range, position)
                        self._start_regeneration(address_range, position)
                yield self.sim.timeout(_WRITE_RETRY_BACKOFF_US)
                phases.mark("retry_backoff", attempt=attempt)
                continue
            # The splits are in remote memory; commit the ack record before
            # promising anything to the client. On quorum loss the RM is
            # fenced and the version table untouched: the successor's seal
            # pass resolves the torn splits at `version`.
            if self._meta is not None:
                self._meta.append("write_acked", page_id=page_id, version=version)
                if not (yield from self._meta.commit_ok()):
                    self.events.incr("meta_commit_failures")
                    if not full_done.triggered:
                        full_done.succeed_now()
                    raise RemoteMemoryUnavailable(
                        f"metadata quorum lost before acking page {page_id}"
                    )
            self._versions[page_id] = version
            # Positions that could not receive this write need a catch-up
            # split once their slab is regenerated; buffer the content so
            # the repair is self-contained. Decide by the positions that
            # were unavailable when the splits were POSTED — if one came
            # back while our acks were in flight, the helper posts the
            # split directly instead of buffering.
            if len(available) != config.n or not all(
                handle.available for handle in address_range.slots
            ):
                for position in range(config.n):
                    posted = position in available
                    live = address_range.handle(position).available
                    if posted and live:
                        continue  # the write itself covered this position
                    self._record_or_post_catchup(
                        address_range, position, offset, page_id, version, data
                    )
            if self._meta is not None:
                if full_done.triggered:
                    self._meta.append(
                        "write_durable", page_id=page_id, version=version
                    )
                    self._meta.commit_async()
                else:
                    def _meta_durable(_e, page_id=page_id, version=version):
                        if self._meta is not None and not self._meta.fenced:
                            self._meta.append(
                                "write_durable", page_id=page_id, version=version
                            )
                            self._meta.commit_async()

                    full_done.callbacks.append(_meta_durable)
            if self._observers:
                self._notify("on_write_acked", page_id, version, data)
                if full_done.triggered:
                    self._notify("on_write_durable", page_id, version)
                else:
                    def _notify_durable(_e, page_id=page_id, version=version):
                        self._notify("on_write_durable", page_id, version)

                    full_done.callbacks.append(_notify_durable)
            self.write_latency.record(self.sim.now - start)
            self.ops_window.record(self.sim.now)
            self.events.incr("writes")
            return None

        if not full_done.triggered:
            full_done.succeed_now()  # give up; unblock any ordered readers
        self.events.incr("write_failures")
        raise RemoteMemoryUnavailable(
            f"write of page {page_id} failed after {_WRITE_RETRY_LIMIT} attempts"
        )

    def _write_fast(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        data_splits: Optional[np.ndarray],
        full_done: Event,
        span: Optional[Span] = None,
        phases=None,
    ):
        """Asynchronously encoded write: data first, parity in background."""
        config = self.config
        dp = config.datapath
        phases = phases if phases is not None else self.tracer.phases(span)
        if data_splits is not None:
            posts = list(enumerate(data_splits))  # row views, one per position
        else:
            posts = [
                (position, PhantomSplit(version=version))
                for position in range(config.k)
            ]
        acks = self._post_split_writes(address_range, offset, posts, span)
        succeeded = yield from self._await_acks(acks, need=config.k)
        phases.mark("wait_k", fanout=config.k, acked=succeeded)
        yield Timeout(self.sim, self._completion_k_us)
        phases.mark("completion")
        if succeeded < config.k:
            raise RemoteMemoryUnavailable("data-split writes failed")
        # Application gets its ack here; parity continues asynchronously.
        parity_span = (
            span.child("rm.parity", cat="background") if span is not None else None
        )
        self.sim.process(
            self._write_parity_async(
                address_range, offset, page_id, version, data_splits, full_done,
                parity_span,
            ),
            name=f"hydra-parity:{page_id}",
        )
        return None

    def _write_parity_async(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        data_splits: Optional[np.ndarray],
        full_done: Event,
        span: Optional[Span] = None,
    ):
        config = self.config
        yield Timeout(self.sim, self._encode_us)
        if self._fenced:
            # Fenced mid-write: the successor's seal pass owns this page
            # now; posting stale parities would race its full rewrite.
            if span is not None:
                span.set_tag("fenced", True)
                span.finish()
            if not full_done.triggered:
                full_done.succeed_now()
            return
        if span is not None:
            span.set_tag("encode_done_us", round(self.sim.now, 4))
        if self.debug_drop_parity:
            # Injected durability bug (chaos self-test): every parity write
            # is silently dropped, yet the write still reports durable.
            if span is not None:
                span.set_tag("parities", 0)
                span.set_tag("debug_dropped", True)
                span.finish()
            if not full_done.triggered:
                full_done.succeed_now()
            return
        if config.payload_mode == "real":
            parity = self.codec.code.encode(data_splits)
        else:
            parity = None
        posts = []
        for index in range(config.r):
            position = config.k + index
            if not address_range.handle(position).available:
                # This parity cannot be written now; make sure the pending
                # regeneration (or a direct post, if it races us) covers it.
                self._record_or_post_catchup(
                    address_range, position, offset, page_id, version,
                    self._page_bytes_from_splits(data_splits),
                )
                continue
            if parity is not None:
                payload = parity[index]
            else:
                payload = PhantomSplit(version=version)
            posts.append((position, payload))
        acks = self._post_split_writes(address_range, offset, posts, span)
        if acks:
            yield from self._await_acks(acks, need=len(acks))
        self.events.incr("parity_writes", len(acks))
        if span is not None:
            span.set_tag("parities", len(acks))
            span.finish()
        if not full_done.triggered:
            full_done.succeed_now()

    def _write_degraded(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        data_splits: Optional[np.ndarray],
        available: List[int],
        full_done: Event,
        span: Optional[Span] = None,
        phases=None,
    ):
        """Synchronous-encode write used when async encoding is off or some
        data slab is unavailable: encode, write all reachable splits, return
        after k acks (§4.3 'resends the I/O request to other machines')."""
        config = self.config
        dp = config.datapath
        phases = phases if phases is not None else self.tracer.phases(span)
        if len(available) < config.k:
            raise RemoteMemoryUnavailable(
                f"only {len(available)} slabs available, need {config.k}"
            )
        yield Timeout(self.sim, self._encode_us)
        phases.mark("encode")
        if config.payload_mode == "real":
            all_splits = self.codec.code.encode_page(data_splits)
        else:
            all_splits = None
        acks = self._post_split_writes(
            address_range,
            offset,
            [
                (
                    position,
                    all_splits[position]
                    if all_splits is not None
                    else PhantomSplit(version=version),
                )
                for position in available
            ],
            span,
        )
        wait_for = len(acks) if not dp.async_encoding else config.k
        succeeded = yield from self._await_acks(acks, need=wait_for)
        phases.mark("wait_k", fanout=len(acks), acked=succeeded)
        yield self.sim.timeout(completion_overhead_us(dp, wait_for))
        phases.mark("completion")
        if succeeded < min(config.k, len(acks)):
            raise RemoteMemoryUnavailable("degraded write could not reach k acks")
        self.events.incr("degraded_writes")
        if not full_done.triggered:
            full_done.succeed_now()
        return None

    # ==================================================================
    # read path (§4.2.2)
    # ==================================================================
    def _read_process(self, page_id: int, span: Optional[Span] = None):
        config = self.config
        dp = config.datapath
        phases = self.tracer.phases(span)
        start = self.sim.now
        if self._fenced:
            self.events.incr("fenced_reads")
            raise RemoteMemoryUnavailable(
                f"resilience manager {self.machine_id} is fenced"
            )
        self.events.incr("reads")

        # Per-QP ordering makes read-after-write safe for data splits, but a
        # read racing the *asynchronous parity* writes could mix versions;
        # the RM tracks in-flight writes and orders behind them (§4.3).
        inflight = self._inflight_writes.get(page_id)
        if inflight is not None and not inflight.triggered:
            yield inflight
            phases.mark("order")

        if page_id not in self._versions:
            return None  # never written; nothing to read

        range_id, offset = self.space.locate(page_id)
        address_range = self.space.get(range_id)
        if address_range is None:
            raise HydraError(f"page {page_id} has a version but no range")
        version = self._versions[page_id]

        available = address_range.available_positions()
        if len(available) < config.k:
            raise RemoteMemoryUnavailable(
                f"page {page_id}: only {len(available)} slabs reachable"
            )

        # No machine has ever been suspected on the vast majority of reads;
        # one truthiness check replaces the per-position score scan then.
        error_scores = self.error_scores
        suspected = bool(error_scores) and any(
            error_scores.get(address_range.handle(p).machine_id, 0.0)
            >= config.error_correction_limit
            for p in available
        )
        if suspected:
            fanout = min(config.correction_fanout(), len(available))
            self.events.incr("suspicious_reads")
        else:
            fanout = min(config.read_fanout(), len(available))
        if span is not None:
            span.set_tag("fanout", fanout)
            if suspected:
                span.set_tag("suspected", True)

        issue_us = self._issue_us.get(fanout)
        if issue_us is None:
            issue_us = self._issue_us[fanout] = issue_overhead_us(dp, fanout)
        yield Timeout(self.sim, issue_us)
        phases.mark("issue")

        positions = self.rng.sample(available, fanout)
        gather = _SplitGather(self.sim, self._split_validator(version))
        self._post_split_reads(address_range, positions, offset, gather, span)

        escalations = 0
        while len(gather.valid) < config.k:
            yield gather.wait_valid(config.k)
            if len(gather.valid) >= config.k:
                break
            # Escalate: everything in flight has landed and we still lack
            # k valid splits — request the untried positions.
            escalated = False
            for position in address_range.available_positions():
                if position not in gather.posted:
                    gather.post(
                        position,
                        self._post_split_read(address_range, position, offset, span),
                    )
                    self.events.incr("escalation_reads")
                    escalations += 1
                    escalated = True
            if not escalated and gather.outstanding == 0:
                break
        phases.mark("wait_k", valid=len(gather.valid))
        if span is not None and escalations:
            span.set_tag("escalations", escalations)

        if len(gather.valid) < config.k:
            self.events.incr("read_failures")
            if self._observers:
                self._notify("on_read_failed", page_id)
            detail = []
            for position, payload in sorted(gather.arrivals.items()):
                if isinstance(payload, PhantomSplit):
                    state = f"v{payload.version}" + ("!" if payload.corrupt else "")
                elif payload is None:
                    state = "none"
                else:
                    state = "bytes"
                detail.append(f"{position}={state}")
            raise RemoteMemoryUnavailable(
                f"page {page_id}: decoded {len(gather.valid)} valid splits, "
                f"need {config.k} (want v{version}; arrivals: {', '.join(detail)})"
            )

        yield Timeout(self.sim, self._completion_k_us)
        phases.mark("completion")

        # In-place coding guard: the k-th valid arrival deregisters the
        # page's memory region, so later (possibly corrupt) splits can never
        # overwrite it — we snapshot exactly the first k valid splits.
        first_k = gather.first_valid(config.k)
        systematic = set(first_k) == set(range(config.k))
        if not systematic:
            yield Timeout(self.sim, self._decode_us)
            phases.mark("decode")
            self.events.incr("decoded_reads")

        page: Optional[bytes] = None
        if config.payload_mode == "real":
            if suspected:
                page = yield from self._read_with_correction(
                    address_range, offset, page_id, version, gather, span
                )
                phases.mark("correction")
            else:
                page = self.codec.decode(first_k)
                if config.verify_reads:
                    verify_span = (
                        span.child("rm.verify", cat="background")
                        if span is not None
                        else None
                    )
                    self._schedule_background_verify(
                        address_range, offset, page_id, version, gather,
                        verify_span,
                    )

        if self._observers:
            self._notify("on_read_done", page_id, version, page, start)
        self.read_latency.record(self.sim.now - start)
        self.ops_window.record(self.sim.now)
        return page

    def _read_with_correction(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        gather: _SplitGather,
        span: Optional[Span] = None,
    ):
        """Inline verified read for suspected machines: wait for the full
        (k + 2Δ + 1) fanout and decode through the correction path."""
        yield gather.wait_all()
        try:
            page = self.codec.decode_verified(gather.real_payloads())
            self.events.incr("verified_reads")
            return page
        except CorruptionDetected:
            pass
        page, _corrupted = yield from self._correct_and_heal(
            address_range, offset, page_id, version, gather.real_payloads(), span
        )
        return page

    def _schedule_background_verify(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        gather: _SplitGather,
        span: Optional[Span] = None,
    ) -> None:
        """§4.3 detection path: once the Δ extra splits arrive, check
        consistency off the critical path; on detection, correct and heal.

        The check runs as a callback on the gather's wait-all event — no
        process is spawned unless corruption is actually detected, which
        keeps the (overwhelmingly common) consistent case off the event
        queue entirely."""
        config = self.config

        def check(_done: Event) -> None:
            spawned = False
            try:
                usable = gather.real_payloads()
                if len(usable) <= config.k:
                    return  # not enough for detection
                if self.codec.verify(usable):
                    return  # consistent; nothing to do
                self.events.incr("corruption_detected")
                if span is not None:
                    span.set_tag("corruption_detected", True)
                spawned = True
                self.sim.process(
                    self._correct_heal_finish(
                        address_range, offset, page_id, version, usable, span
                    ),
                    name=f"hydra-verify:{page_id}",
                )
            finally:
                if span is not None and not spawned:
                    span.finish()

        waiter = gather.wait_all()
        if waiter.processed:
            # Every posted split already landed; the waiter fired inside
            # wait_all() itself, so run the check directly.
            check(waiter)
        else:
            waiter.callbacks.append(check)

    def _correct_heal_finish(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        usable: Dict[int, object],
        span: Optional[Span] = None,
    ):
        try:
            yield from self._correct_and_heal(
                address_range, offset, page_id, version, usable, span
            )
        finally:
            if span is not None:
                span.finish()

    def _correct_and_heal(
        self,
        address_range: AddressRange,
        offset: int,
        page_id: int,
        version: int,
        splits: Dict[int, object],
        parent: Optional[Span] = None,
    ):
        """Fetch Δ + 1 extra splits, locate/correct errors, rewrite the
        corrupted splits, and update per-machine error scores."""
        config = self.config
        # Corruption recovery is rare and high-value: trace it whenever the
        # tracer is on at all, even if the triggering read lost the sample.
        span = (
            parent.child("rm.recover", cat="recovery")
            if parent is not None
            else self.tracer.start_span(
                "rm.recover",
                machine_id=self.machine_id,
                cat="recovery",
                tags={"page": page_id},
            )
        )
        try:
            extra_needed = config.correction_fanout() - len(splits)
            if extra_needed > 0:
                extra_positions = [
                    p
                    for p in address_range.available_positions()
                    if p not in splits
                ][: extra_needed + config.delta]
                extra = _SplitGather(
                    self.sim, lambda p: isinstance(p, np.ndarray)
                )
                for position in extra_positions:
                    extra.post(
                        position,
                        self._post_split_read(address_range, position, offset, span),
                    )
                if extra_positions:
                    yield extra.wait_all()
                splits.update(extra.real_payloads())

            # Best-effort localization when the k + 2Δ + 1 guarantee cannot
            # be met with the splits that exist (e.g. r < 2Δ + 1): the
            # unique maximal-agreement codeword localizes random corruption
            # with overwhelming probability (§5.1 distinguishes this from
            # the information-theoretic guarantee).
            max_errors = max(1, (len(splits) - config.k - 1) // 2)
            try:
                page, corrupted = self.codec.correct(
                    splits, max_errors=max_errors, best_effort=True
                )
            except DecodeError:
                # Cannot localize: smear suspicion across those involved.
                for position in splits:
                    machine = address_range.handle(position).machine_id
                    self._record_error(
                        machine, 1.0 / len(splits), address_range, position
                    )
                self.events.incr("uncorrectable_detections")
                if span is not None:
                    span.set_tag("outcome", "uncorrectable")
                return self.codec.decode(splits), []

            self.events.incr("corrected_reads")
            data_splits = self.codec.split(page)
            for position in corrupted:
                machine = address_range.handle(position).machine_id
                self._record_error(machine, 1.0, address_range, position)
                # Heal the stored split in place.
                payload = self.codec.code.reencode_split(data_splits, position)
                self._post_split_write(address_range, position, offset, payload, span)
                self.events.incr("healed_splits")
            if span is not None:
                span.set_tag("outcome", "corrected")
                span.set_tag("corrupted_positions", list(corrupted))
            return page, corrupted
        finally:
            if span is not None:
                span.finish()

    # ==================================================================
    # failure / eviction / corruption bookkeeping (§4.3)
    # ==================================================================
    def _record_error(
        self, machine_id: int, weight: float, address_range: AddressRange, position: int
    ) -> None:
        score = self.error_scores.get(machine_id, 0.0) + weight
        self.error_scores[machine_id] = score
        if score >= self.config.slab_regeneration_limit:
            # Error rate beyond repair: regenerate this machine's slab.
            self._mark_failed(address_range, position)
            self.error_scores[machine_id] = 0.0
            self.events.incr("regen_for_errors")
            self._start_regeneration(address_range, position)
        if self._meta is not None:
            self._meta.append(
                "error_score", machine_id=machine_id,
                score=self.error_scores[machine_id],
            )
            self._meta.commit_async()

    def _on_machine_down(self, machine_id: int) -> None:
        """RDMA connection-manager notification: fail over every range that
        had a slab on the dead machine and regenerate in the background."""
        if self._fenced:
            return
        self.events.incr("disconnects")
        for address_range in self.space.ranges_using_machine(machine_id):
            for position in address_range.positions_on_machine(machine_id):
                handle = address_range.handle(position)
                if handle.available:
                    self._mark_failed(address_range, position)
                    self._start_regeneration(address_range, position)

    def _on_evict_notice(self, src_id: int, body: dict) -> None:
        """A Resource Monitor wants to evict one of our slabs (explicit
        message, §4.3 'eviction handling is similar to failure').

        Batch eviction *contacts the owners to determine* the victims
        (§4.4): if the slab's range is already degraded (another slab
        failed or mid-regeneration), the eviction is vetoed so correlated
        evictions cannot silently erode a range below k survivors.
        """
        range_id = body["range_id"]
        position = body["position"]
        if self._fenced:
            return {"ok": True}  # a fenced RM's map is dead weight anyway
        address_range = self.space.get(range_id)
        if address_range is None:
            return {"ok": True}  # stale slab; monitor may drop it
        handle = address_range.handle(position)
        if handle.slab_id != body["slab_id"] or not handle.available:
            return {"ok": True}
        if len(address_range.available_positions()) < address_range.n:
            self.events.incr("evictions_vetoed")
            return {"ok": False}
        self.events.incr("evictions")
        self._mark_failed(address_range, position)
        self._start_regeneration(address_range, position)
        return {"ok": True}

    # ==================================================================
    # background slab regeneration (§4.4)
    # ==================================================================
    def _start_regeneration(self, address_range: AddressRange, position: int) -> None:
        if self._fenced:
            return  # the successor owns all repairs now
        key = (address_range.range_id, position)
        if key in self._regenerating:
            return
        self._regenerating.add(key)
        if self._observers:
            self._notify("on_regen_start", address_range.range_id, position)
        self.sim.process(
            self._regenerate(address_range, position),
            name=f"hydra-regen:{key}",
        )

    def _regenerate(self, address_range: AddressRange, position: int):
        key = (address_range.range_id, position)
        config = self.config
        # Regeneration is rare: always trace it when the tracer is enabled.
        span = self.tracer.start_span(
            "rm.regen",
            machine_id=self.machine_id,
            tags={"range": address_range.range_id, "position": position},
        )
        phases = self.tracer.phases(span)
        outcome: List[str] = []

        def _outcome(value: str) -> None:
            outcome.append(value)
            if span is not None:
                span.set_tag("outcome", value)

        try:
            available = address_range.available_positions()
            if len(available) < config.k:
                self.events.incr("regen_impossible")
                _outcome("impossible")
                return  # data is lost; nothing to rebuild from
            exclude = set(address_range.machine_ids()) | {self.machine_id}
            try:
                target = yield from self.placer.place_single(
                    address_range.range_id, position, exclude
                )
            except PlacementError:
                # No machine can host the slab right now (cluster-wide
                # pressure): retry after a backoff instead of leaving the
                # range degraded forever.
                self.events.incr("regen_no_target")
                _outcome("no_target")
                self._retry_regeneration_later(address_range, position)
                return
            phases.mark("place", target=target)
            # Hand the monitor *every* available position: pages missing
            # from one source (e.g. a previously regenerated slab) can
            # still be rebuilt from any k others.
            sources = list(available)
            body = {
                "range_id": address_range.range_id,
                "position": position,
                "owner": self.machine_id,
                "k": config.k,
                "r": config.r,
                "page_size": config.page_size,
                "payload_mode": config.payload_mode,
                "sources": [
                    {
                        "machine_id": address_range.handle(p).machine_id,
                        "slab_id": address_range.handle(p).slab_id,
                        "position": p,
                    }
                    for p in sources
                ],
            }
            waiter = self.sim.event(name=f"regen-wait:{key}")
            self._regen_waiters[key] = waiter
            try:
                yield self.endpoint.call(target, "regenerate_slab", body)
            except RpcError:
                # The chosen target died between placement and hand-off.
                # Retry after a backoff — place_single surveys afresh at
                # retry time, so the dead machine is never re-picked.
                self._regen_waiters.pop(key, None)
                self.events.incr("regen_handoff_failures")
                _outcome("handoff_failed")
                self._retry_regeneration_later(address_range, position)
                return
            phases.mark("handoff")
            # The monitor calls back when rebuilt; guard against it dying
            # mid-rebuild with a timeout + retry.
            deadline = self.sim.timeout(_REGEN_TIMEOUT_US)
            yield self.sim.any_of([waiter, deadline])
            phases.mark("rebuild_wait")
            if not waiter.triggered:
                self.events.incr("regen_timeouts")
                _outcome("timeout")
                # Back off for a control period before retrying: a ~1 µs
                # retry after a 5 s silent-target timeout would hot-loop
                # RPCs against a cluster that just demonstrated it is slow.
                self._retry_regeneration_later(address_range, position)
                return
            if not deadline.processed:
                # The RPC won the race: revoke the 5 s deadline timer so it
                # does not linger in the engine heap until it expires.
                deadline.cancel()
            result = waiter.value
            new_handle = SlabHandle(
                machine_id=result["machine_id"], slab_id=result["slab_id"]
            )
            # Apply catch-up writes BEFORE the position goes live: while it
            # is still marked failed, every concurrent write keeps landing
            # in the catch-up buffer, so draining it to empty and then
            # replacing the handle (no yield in between) leaves the slab
            # exactly current.
            yield from self._apply_catchup(address_range, position, new_handle)
            phases.mark("catchup")
            address_range.replace(position, new_handle)
            if self._meta is not None:
                self._meta.append(
                    "position_replaced",
                    range_id=address_range.range_id,
                    position=position,
                    machine_id=new_handle.machine_id,
                    slab_id=new_handle.slab_id,
                )
                self._meta.commit_async()
            # The replacement may live on a machine we have never talked
            # to: watch its connection too, or later failures of that
            # machine would go unnoticed.
            self._watch_machines([new_handle])
            self.events.incr("regenerations")
            _outcome("regenerated")
        finally:
            if span is not None:
                span.finish()
            self._regenerating.discard(key)
            self._regen_waiters.pop(key, None)
            if self._observers:
                self._notify(
                    "on_regen_end",
                    address_range.range_id,
                    position,
                    outcome[-1] if outcome else "error",
                )

    def _record_or_post_catchup(
        self,
        address_range: AddressRange,
        position: int,
        offset: int,
        page_id: int,
        version: int,
        data,
    ) -> None:
        """A write could not cover ``position``: buffer it for the pending
        regeneration — or, if the position already came back (the write
        raced the repair), post the split directly (later post on the same
        QP wins over anything the repair wrote)."""
        handle = address_range.handle(position)
        if handle.available:
            if self.config.payload_mode == "real" and data is not None:
                payload = self.codec.code.reencode_split(
                    self.codec.split(data), position
                )
            else:
                payload = PhantomSplit(version=version)
            self._post_split_write(address_range, position, offset, payload)
            self.events.incr("catchup_direct_posts")
            return
        self._catchup.setdefault((address_range.range_id, position), {})[
            page_id
        ] = (version, data)

    def _apply_catchup(
        self, address_range: AddressRange, position: int, handle: SlabHandle
    ):
        """Bring a regenerated slab fully up to date before it goes live.

        Re-encodes the buffered page content recorded by writes that ran
        while the position was down and writes the splits directly to the
        replacement slab. Loops until the buffer drains — writes landing
        mid-drain re-enter it because the position is still marked failed.
        """
        config = self.config
        key = (address_range.range_id, position)
        while True:
            buffered = self._catchup.pop(key, None)
            if not buffered:
                return
            # Re-encode the whole drained batch in one GF matmul; the split
            # for a page is pure in its buffered bytes, so computing it
            # up-front is exact. Version filtering stays inside the loop —
            # versions can advance between the yields below.
            payloads: Dict[int, np.ndarray] = {}
            if config.payload_mode == "real":
                real_ids = [
                    pid for pid, (_v, d) in buffered.items() if d is not None
                ]
                if real_ids:
                    stack = self.codec.split_pages(
                        [buffered[pid][1] for pid in real_ids]
                    )
                    rows = reencode_split_pages(self.codec.code, stack, position)
                    payloads = dict(zip(real_ids, rows))
            for page_id, (version, data) in buffered.items():
                if self._versions.get(page_id, 0) > version:
                    # A newer write exists; its own catch-up entry (or the
                    # live write, once the position is available) wins.
                    if key in self._catchup and page_id in self._catchup[key]:
                        continue
                    # Newer version recorded nowhere for this position can
                    # only mean the position went live in between — which
                    # cannot happen before replace(); skip defensively.
                    continue
                _range_id, offset = self.space.locate(page_id)
                if config.payload_mode == "real" and data is not None:
                    payload = payloads[page_id]
                else:
                    payload = PhantomSplit(version=version)
                machine = self.fabric.machine(handle.machine_id)
                qp = self.fabric.qp(self.machine_id, handle.machine_id)
                yield qp.post_write(
                    config.split_size,
                    apply=lambda m=machine, h=handle, o=offset, p=payload: (
                        m.write_split(h.slab_id, o, p)
                    ),
                )
                self.events.incr("catchup_writes")

    def _retry_regeneration_later(
        self, address_range: AddressRange, position: int, delay: Optional[float] = None
    ) -> None:
        """Schedule another regeneration attempt after a backoff (runs
        after the current attempt's cleanup has released the dedup key).

        Per-slot guard: while a retry timer is pending the slot is outside
        ``_regenerating``, so another trigger (an eviction notice racing a
        machine-down notification, an error-limit trip) could start a
        fresh regeneration AND leave this timer to start a duplicate a
        control period later. ``_regen_retry_pending`` dedupes the timers;
        ``_start_regeneration`` dedupes the regenerations themselves.
        """
        if delay is None:
            delay = self.config.control_period_us
        key = (address_range.range_id, position)
        if key in self._regen_retry_pending:
            return
        self._regen_retry_pending.add(key)

        def retry():
            yield self.sim.timeout(delay)
            self._regen_retry_pending.discard(key)
            if self._fenced:
                return
            handle = address_range.handle(position)
            if not handle.available:
                self._start_regeneration(address_range, position)

        self.sim.process(
            retry(), name=f"regen-retry:{address_range.range_id}/{position}"
        )

    def _on_slab_regenerated(self, src_id: int, body: dict) -> None:
        key = (body["range_id"], body["position"])
        waiter = self._regen_waiters.get(key)
        if waiter is not None and not waiter.triggered:
            waiter.succeed({"machine_id": src_id, "slab_id": body["slab_id"]})
        return {"ok": True}

    # ==================================================================
    # reclaim (Fig 7b): bring a range's pages home and release its slabs
    # ==================================================================
    def reclaim_range(self, range_id: int):
        """Simulation process: read every page of a range back, unmap its
        slabs, and return ``{page_id: bytes|None}`` to the caller (the VMM
        absorbs them into local memory)."""
        return self.sim.process(self._reclaim_process(range_id), name=f"reclaim:{range_id}")

    def _reclaim_process(self, range_id: int):
        address_range = self.space.get(range_id)
        if address_range is None:
            return {}
        pages: Dict[int, Optional[bytes]] = {}
        for page_id in [p for p in self._versions if self.space.locate(p)[0] == range_id]:
            data = yield self.read(page_id)
            pages[page_id] = data
            del self._versions[page_id]
        for position, handle in enumerate(address_range.slots):
            if not handle.available:
                continue
            try:
                yield self.endpoint.call(
                    handle.machine_id, "unmap_slab", {"slab_id": handle.slab_id}
                )
            except RpcError:
                pass
        self.space.drop(range_id)
        if self._meta is not None:
            self._meta.append("range_dropped", range_id=range_id)
            self._meta.commit_async()
        self.events.incr("ranges_reclaimed")
        return pages

    # ==================================================================
    # plumbing
    # ==================================================================
    def _resolve(self, page_id: int):
        """Locate (or lazily place) the address range of ``page_id``.

        Raises :class:`PlacementError` when the cluster cannot host the
        range right now; callers back off and retry.
        """
        range_id, offset = self.space.locate(page_id)
        address_range = self.space.get(range_id)
        if address_range is not None:
            return address_range, offset
        pending = self._placements_pending.get(range_id)
        if pending is not None:
            yield pending
            address_range = self.space.get(range_id)
            if address_range is None:
                raise PlacementError(
                    f"placement of range {range_id} failed while waiting"
                )
            return address_range, offset
        gate = self.sim.event(name=f"placement:{range_id}")
        self._placements_pending[range_id] = gate
        try:
            handles = yield from self.placer.place_range(range_id)
            address_range = AddressRange(range_id, handles)
            self.space.install(address_range)
            if self._meta is not None:
                # Rides the caller's next commit: a write always commits
                # its intent right after resolving, and reads never place.
                self._meta.append(
                    "range_installed",
                    range_id=range_id,
                    handles=[
                        [h.machine_id, h.slab_id, bool(h.available)]
                        for h in handles
                    ],
                )
            self._watch_machines(handles)
            self.events.incr("ranges_placed")
        finally:
            del self._placements_pending[range_id]
            gate.succeed()
        return address_range, offset

    def _watch_machines(self, handles: List[SlabHandle]) -> None:
        for handle in handles:
            if handle.machine_id in self._watched_machines:
                continue
            self._watched_machines.add(handle.machine_id)
            qp = self.fabric.qp(self.machine_id, handle.machine_id)
            qp.on_disconnect(self._on_machine_down)

    def _page_bytes_from_splits(self, data_splits) -> Optional[bytes]:
        if data_splits is None:
            return None
        return self.codec.join(data_splits)

    def _payload(self, data_splits, position: int, version: int):
        if data_splits is not None:
            return data_splits[position]
        return PhantomSplit(version=version)

    def _endpoint(self, machine_id: int):
        pair = self._endpoints.get(machine_id)
        if pair is None:
            pair = (
                self.fabric.machine(machine_id),
                self.fabric.qp(self.machine_id, machine_id),
            )
            self._endpoints[machine_id] = pair
        return pair

    def _post_split_write(
        self,
        address_range: AddressRange,
        position: int,
        offset: int,
        payload,
        span: Optional[Span] = None,
    ) -> Event:
        handle = address_range.handle(position)
        machine, qp = self._endpoint(handle.machine_id)
        return qp.post_write(
            self.config.split_size,
            apply=lambda: machine.write_split(handle.slab_id, offset, payload),
            span=span,
        )

    def _post_split_read(
        self,
        address_range: AddressRange,
        position: int,
        offset: int,
        span: Optional[Span] = None,
    ) -> Event:
        handle = address_range.handle(position)
        machine, qp = self._endpoint(handle.machine_id)
        return qp.post_read(
            self.config.split_size,
            fetch=lambda: machine.read_split(handle.slab_id, offset),
            span=span,
        )

    def _post_split_writes(
        self,
        address_range: AddressRange,
        offset: int,
        posts,
        span: Optional[Span] = None,
    ) -> List[Event]:
        """Batched write fan-out: one split write per ``(position, payload)``.

        Walks the verb layers once for the whole fan-out, hoisting the
        handle/endpoint lookups off the per-split path. Verbs are posted in
        list order, so per-QP completion ordering and RNG draw order are
        identical to calling :meth:`_post_split_write` in a loop.
        """
        if span is not None:
            return [
                self._post_split_write(address_range, position, offset, payload, span)
                for position, payload in posts
            ]
        split_size = self.config.split_size
        slots = address_range.slots
        endpoints = self._endpoints
        acks = []
        append = acks.append
        for position, payload in posts:
            handle = slots[position]
            pair = endpoints.get(handle.machine_id)
            if pair is None:
                pair = self._endpoint(handle.machine_id)
            machine, qp = pair
            append(
                qp._post(
                    split_size,
                    lambda m=machine, s=handle.slab_id, p=payload: m.write_split(
                        s, offset, p
                    ),
                    True,
                )
            )
        return acks

    def _post_split_reads(
        self,
        address_range: AddressRange,
        positions,
        offset: int,
        gather,
        span: Optional[Span] = None,
    ) -> None:
        """Batched read fan-out into ``gather`` — see :meth:`_post_split_writes`."""
        if span is not None:
            for position in positions:
                gather.post(
                    position,
                    self._post_split_read(address_range, position, offset, span),
                )
            return
        split_size = self.config.split_size
        slots = address_range.slots
        endpoints = self._endpoints
        post = gather.post
        for position in positions:
            handle = slots[position]
            pair = endpoints.get(handle.machine_id)
            if pair is None:
                pair = self._endpoint(handle.machine_id)
            machine, qp = pair
            post(
                position,
                qp._post(
                    split_size,
                    lambda m=machine, s=handle.slab_id: m.read_split(s, offset),
                    True,
                ),
            )

    def _post_split_read_batch(
        self,
        address_range: AddressRange,
        positions,
        offset: int,
    ) -> List[Tuple[int, Event]]:
        """Batched read fan-out returning ``(position, event)`` pairs.

        Same one-pass endpoint walk as :meth:`_post_split_reads`, for
        callers (recovery, reseal) that await the whole batch instead of
        streaming arrivals into a gather. Posting order follows
        ``positions``, so per-QP RNG draw order matches the scalar loop.
        """
        split_size = self.config.split_size
        slots = address_range.slots
        endpoints = self._endpoints
        posted: List[Tuple[int, Event]] = []
        append = posted.append
        for position in positions:
            handle = slots[position]
            pair = endpoints.get(handle.machine_id)
            if pair is None:
                pair = self._endpoint(handle.machine_id)
            machine, qp = pair
            append(
                (
                    position,
                    qp._post(
                        split_size,
                        lambda m=machine, s=handle.slab_id: m.read_split(s, offset),
                        True,
                    ),
                )
            )
        return posted

    def _split_validator(self, version: int):
        """A single-call closure equivalent of ``_is_valid(p, version)`` —
        the read gather invokes it once per arrival, so the extra lambda →
        method indirection is worth flattening."""

        def valid(payload, _phantom=PhantomSplit, _ndarray=np.ndarray) -> bool:
            if payload is None:
                return False
            if isinstance(payload, _phantom):
                return not payload.corrupt and payload.version == version
            return isinstance(payload, _ndarray)

        return valid

    def _is_valid(self, payload, version: int) -> bool:
        if payload is None:
            return False
        if isinstance(payload, PhantomSplit):
            # Phantom corruption models *detectable* (integrity-checked)
            # corruption; silent corruption needs real mode.
            return not payload.corrupt and payload.version == version
        return isinstance(payload, np.ndarray)

    def _await_acks(self, events: List[Event], need: int):
        """Wait until ``need`` of ``events`` succeed (or all finish);
        failures just reduce the achievable count. Returns the success
        count. Implemented with completion callbacks — one waiter event
        total, however many acks are in flight."""
        if not events:
            return 0
        need = min(need, len(events))
        waiter = self.sim.event(name="acks")
        counts = [0, 0]  # [succeeded, finished]
        total = len(events)

        def on_done(event: Event) -> None:
            counts[1] += 1
            if event._ok:
                counts[0] += 1
            if not waiter.triggered and (counts[0] >= need or counts[1] == total):
                waiter.succeed_now()

        for event in events:
            if event.processed:
                on_done(event)
            else:
                event.callbacks.append(on_done)
        if not waiter.triggered and (counts[0] >= need or counts[1] == total):
            waiter.succeed_now()
        yield waiter
        return counts[0]
