"""Disaggregated VMM front-end (Infiniswap/LegoOS-style paging)."""

from .pager import PagedMemory

__all__ = ["PagedMemory"]
