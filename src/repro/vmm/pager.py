"""Disaggregated virtual memory manager — the paging front-end.

This is the Infiniswap/LegoOS-style integration (§6): applications access
a flat page space; pages beyond the local memory limit live in remote
memory through whichever backend (Hydra RM or a baseline) the pager is
given. A page access that misses the resident set triggers:

* page-in — a backend read on the critical path;
* eviction — when the resident set is full, the LRU victim is dropped
  (clean) or written back to the backend (dirty) before the new page is
  admitted.

The pager is payload-agnostic: in real mode it keeps the authoritative
content of every resident page and verifies what comes back from remote
memory; in phantom mode only access timing is modeled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..obs import MetricsRegistry, Span, Tracer

__all__ = ["PagedMemory"]


class PagedMemory:
    """An LRU-resident-set pager over a remote-memory backend.

    Parameters
    ----------
    backend:
        Any remote-memory pool (``write(page_id, data)``/``read(page_id)``
        returning processes).
    resident_pages:
        Local memory limit in pages. The paper's app experiments set this
        to 100 %, 75 %, or 50 % of the working set.
    page_size:
        Bytes per page.
    hit_cost_us:
        Cost of an access served from local memory (TLB + DRAM).
    verify_contents:
        Real mode only: keep golden copies and assert page-in contents
        match (used by the test suite; adds Python-side memory).
    """

    def __init__(
        self,
        backend,
        resident_pages: int,
        page_size: int = 4096,
        hit_cost_us: float = 0.05,
        verify_contents: bool = False,
        stall_retry_us: float = 500.0,
        read_retries: int = 20,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if resident_pages < 1:
            raise ValueError(f"resident_pages must be >= 1, got {resident_pages}")
        self.backend = backend
        self.sim = backend.sim
        self.resident_pages = resident_pages
        self.page_size = page_size
        self.hit_cost_us = hit_cost_us
        self.verify_contents = verify_contents
        self.stall_retry_us = stall_retry_us
        self.read_retries = read_retries
        # Observability: share the backend's tracer/registry so fault spans
        # parent the backend's request spans in one trace.
        if tracer is None:
            tracer = getattr(backend, "tracer", None)
        if tracer is None:
            tracer = Tracer(self.sim, sample_every=0)
        if metrics is None:
            metrics = getattr(backend, "metrics", None)
        if metrics is None:
            metrics = MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics

        # page_id -> dirty flag; OrderedDict gives O(1) LRU.
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        self._contents: Dict[int, bytes] = {}
        self._remote: set = set()
        owner = getattr(backend, "machine_id", None)
        if owner is None:
            owner = getattr(backend, "client_id", None)
        label = "vmm" if owner is None else f"vmm.{owner}"
        self.fault_latency = metrics.latency(f"{label}.fault")
        # Faults per 1-second window — the paging-pressure timeline the
        # dashboard renders next to hit rate.
        self.fault_window = metrics.throughput(f"{label}.fault_rate")
        self.stats = metrics.counter_group(f"{label}.stats")
        self.verification_failures = 0

    # ------------------------------------------------------------------
    def access(self, page_id: int, write: bool = False, data: Optional[bytes] = None):
        """Simulation event: touch a page (optionally writing it).

        Hits resolve to a plain timeout (cheap — no process); misses spawn
        the fault-handling process. The event's value is the page's bytes
        in real/verify mode, else None.
        """
        if page_id in self._resident:
            # Fast path: resident hit, handled inline.
            self._resident.move_to_end(page_id)
            if write:
                self._resident[page_id] = True
                if data is not None:
                    self._contents[page_id] = data
            self.stats.incr("hits")
            return self.sim.timeout(self.hit_cost_us, value=self._contents.get(page_id))
        return self.sim.process(
            self._access_process(page_id, write, data), name=f"vmm:{page_id}"
        )

    def _access_process(self, page_id: int, write: bool, data: Optional[bytes]):
        if page_id in self._resident:
            # Raced with a concurrent fault for the same page.
            self._resident.move_to_end(page_id)
            if write:
                self._resident[page_id] = True
                if data is not None:
                    self._contents[page_id] = data
            self.stats.incr("hits")
            yield self.sim.timeout(self.hit_cost_us)
            return self._contents.get(page_id)

        # Page fault.
        self.stats.incr("faults")
        self.fault_window.record(self.sim.now)
        span = self.tracer.start_trace(
            "vmm.fault", tags={"page": page_id, "write": write}
        )
        phases = self.tracer.phases(span)
        start = self.sim.now
        try:
            page_bytes: Optional[bytes] = None
            if page_id in self._remote:
                # Transient backend failures (saturation, mid-regeneration)
                # stall the fault, exactly like a blocked swap-in.
                for attempt in range(self.read_retries + 1):
                    try:
                        if span is not None:
                            page_bytes = yield self.backend.read(page_id, parent=span)
                        else:
                            page_bytes = yield self.backend.read(page_id)
                        break
                    except Exception:  # noqa: BLE001 - backend-specific errors
                        if attempt == self.read_retries:
                            raise
                        self.stats.incr("read_stalls")
                        yield self.sim.timeout(self.stall_retry_us)
                self.stats.incr("page_ins")
                phases.mark("page_in")
                if self.verify_contents and page_id in self._contents:
                    if page_bytes != self._contents[page_id]:
                        self.verification_failures += 1
            elif write and data is not None:
                page_bytes = data

            yield from self._make_room(span)
            phases.mark("evict")
            self._resident[page_id] = write
            if data is not None:
                self._contents[page_id] = data  # the write's bytes win
            elif page_bytes is not None:
                self._contents[page_id] = page_bytes
            self.fault_latency.record(self.sim.now - start)
            if span is not None:
                span.set_tag("outcome", "ok")
            return self._contents.get(page_id)
        except BaseException as exc:
            if span is not None:
                span.tags.setdefault("error", type(exc).__name__)
            raise
        finally:
            if span is not None:
                span.finish()

    def _make_room(self, span: Optional[Span] = None):
        """Evict the LRU victim if the resident set is full."""
        while len(self._resident) >= self.resident_pages:
            victim, dirty = self._resident.popitem(last=False)
            if (
                not dirty
                and victim not in self._remote
                and self._contents.get(victim) is None
            ):
                # Touched by reads only, never initialized with content:
                # uninitialized anonymous memory can simply be dropped.
                self.stats.incr("untouched_drops")
                continue
            if dirty or victim not in self._remote:
                # Anonymous pages have no backing store: the first eviction
                # always pages out, like swap for a never-swapped page.
                # Dirty data can never be dropped, so write-back failures
                # (cluster-wide memory pressure) stall until they succeed.
                payload = self._contents.get(victim)
                while True:
                    try:
                        if span is not None:
                            yield self.backend.write(victim, payload, parent=span)
                        else:
                            yield self.backend.write(victim, payload)
                        break
                    except Exception:  # noqa: BLE001 - backend-specific
                        self.stats.incr("write_stalls")
                        yield self.sim.timeout(self.stall_retry_us)
                self._remote.add(victim)
                self.stats.incr("page_outs")
            else:
                # Clean victim with a valid remote copy: drop it.
                self.stats.incr("clean_drops")
            if not self.verify_contents:
                self._contents.pop(victim, None)

    # ------------------------------------------------------------------
    def preload(self, page_ids, make_data=None):
        """Simulation process: fault a set of pages in (warm-up helper).

        ``make_data(page_id)`` supplies real-mode content.
        """

        def run():
            for page_id in page_ids:
                data = make_data(page_id) if make_data else None
                yield self.access(page_id, write=True, data=data)

        return self.sim.process(run(), name="vmm-preload")

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def hit_rate(self) -> float:
        total = self.stats["hits"] + self.stats["faults"]
        return self.stats["hits"] / total if total else 0.0
