"""A byte-addressed file abstraction over the remote block device.

Remote Regions presents remote memory as files; this class provides the
read/write-at-offset interface on top of :class:`RemoteBlockDevice`,
handling block straddling and read-modify-write of partial blocks (real
payload mode only — phantom mode carries no bytes to splice).
"""

from __future__ import annotations

from .block_device import RemoteBlockDevice

__all__ = ["RemoteFile"]


class RemoteFile:
    """A file of bytes stored in remote memory, block by block."""

    def __init__(self, device: RemoteBlockDevice, base_block: int = 0):
        self.device = device
        self.sim = device.sim
        self.base_block = base_block
        self.size = 0

    def write(self, offset: int, data: bytes):
        """Simulation process: write ``data`` at byte ``offset``."""
        return self.sim.process(self._write(offset, data), name="file-write")

    def read(self, offset: int, length: int):
        """Simulation process: read ``length`` bytes at ``offset``."""
        return self.sim.process(self._read(offset, length), name="file-read")

    def _write(self, offset: int, data: bytes):
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        block_size = self.device.block_size
        position = offset
        remaining = data
        while remaining:
            block_id = self.base_block + position // block_size
            within = position % block_size
            chunk = remaining[: block_size - within]
            if within == 0 and len(chunk) == block_size:
                block = chunk
            else:
                # Partial block: read-modify-write.
                current = yield self.device.read_block(block_id)
                if current is None:
                    current = b"\x00" * block_size
                block = (
                    current[:within] + chunk + current[within + len(chunk):]
                )
            yield self.device.write_block(block_id, block)
            position += len(chunk)
            remaining = remaining[len(chunk):]
        self.size = max(self.size, offset + len(data))
        return None

    def _read(self, offset: int, length: int):
        if offset < 0 or length < 0:
            raise ValueError(f"invalid read range ({offset}, {length})")
        block_size = self.device.block_size
        out = bytearray()
        position = offset
        end = offset + length
        while position < end:
            block_id = self.base_block + position // block_size
            within = position % block_size
            take = min(block_size - within, end - position)
            block = yield self.device.read_block(block_id)
            if block is None:
                block = b"\x00" * block_size
            out += block[within : within + take]
            position += take
        return bytes(out)
