"""Disaggregated VFS front-end (Remote Regions-style).

Remote Regions exposes remote memory through a file abstraction; block
reads/writes map one-to-one onto remote memory operations with *no local
caching* — unlike the VMM path, every access pays the remote round trip.
This is the configuration behind Figure 10b's fio measurements.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, LatencyRecorder

__all__ = ["RemoteBlockDevice"]


class RemoteBlockDevice:
    """A block device backed by a remote-memory pool.

    Blocks are backend pages; block ids map directly to page ids.
    """

    def __init__(self, backend, block_size: int = 4096):
        self.backend = backend
        self.sim = backend.sim
        self.block_size = block_size
        self.read_latency = LatencyRecorder("vfs.read")
        self.write_latency = LatencyRecorder("vfs.write")
        self.stats = Counter()

    def write_block(self, block_id: int, data: Optional[bytes] = None):
        """Simulation process: write one block."""
        return self.sim.process(
            self._write(block_id, data), name=f"vfs-write:{block_id}"
        )

    def read_block(self, block_id: int):
        """Simulation process: read one block (value = bytes or None)."""
        return self.sim.process(self._read(block_id), name=f"vfs-read:{block_id}")

    def _write(self, block_id: int, data: Optional[bytes]):
        start = self.sim.now
        yield self.backend.write(block_id, data)
        self.write_latency.record(self.sim.now - start)
        self.stats.incr("writes")
        return None

    def _read(self, block_id: int):
        start = self.sim.now
        value = yield self.backend.read(block_id)
        self.read_latency.record(self.sim.now - start)
        self.stats.incr("reads")
        return value
