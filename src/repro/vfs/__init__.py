"""Disaggregated VFS front-end (Remote Regions-style)."""

from .block_device import RemoteBlockDevice
from .file import RemoteFile

__all__ = ["RemoteBlockDevice", "RemoteFile"]
