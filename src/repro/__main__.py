"""``python -m repro`` — a 30-second guided tour of the reproduction.

Runs three vignettes: the single-µs erasure-coded data path, survival of
a remote machine failure with background regeneration, and the Figure 1
tradeoff corner Hydra occupies.
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.harness.perf import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.parallel.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.obs.top import main as top_main

        return top_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.harness.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv:
        print(
            f"unknown command {argv[0]!r}; "
            "usage: python -m repro "
            "[trace ... | perf ... | chaos ... | bench ... | top ... "
            "| loadgen ...]"
        )
        return 2

    from repro.harness import (
        build_hydra_cluster,
        measure_tradeoff_point,
        run_process,
    )
    from repro.harness.microbench import page_generator

    print("Hydra reproduction — quick tour (see examples/ for more)\n")

    # 1. The data path.
    hydra = build_hydra_cluster(machines=12, k=8, r=2, delta=1, seed=1)
    rm = hydra.remote_memory(0)
    sim = hydra.sim
    make_page = page_generator()

    def datapath():
        for pid in range(64):
            yield rm.write(pid, make_page(pid))
        for pid in range(64):
            yield rm.read(pid)

    run_process(sim, sim.process(datapath(), name="tour"), until=1e9)
    print(
        f"[1] RS(8+2) data path: read p50 {rm.read_latency.p50:.2f} us, "
        f"write p50 {rm.write_latency.p50:.2f} us at 1.25x memory overhead"
    )

    # 2. Failure survival.
    def failure():
        victim = rm.space.get(0).handle(0).machine_id
        hydra.cluster.machine(victim).fail()
        yield sim.timeout(200)
        good = 0
        for pid in range(64):
            good += (yield rm.read(pid)) == make_page(pid)
        yield sim.timeout(5_000_000)
        return good

    good = run_process(sim, sim.process(failure(), name="fail"), until=1e10)
    print(
        f"[2] remote machine killed: {good}/64 pages intact; "
        f"background regenerations: {rm.events['regenerations']}"
    )

    # 3. The tradeoff corner.
    print("[3] Figure 1 corner (read p50 under failure / memory overhead):")
    for scheme in ("ssd_backup", "replication_2x", "hydra"):
        point = measure_tradeoff_point(scheme, machines=12, ops=120, seed=2)
        print(
            f"      {scheme:>15}: {point.read_p50_us:7.2f} us "
            f"at {point.memory_overhead:.2f}x"
        )
    print("\nRun `pytest benchmarks/ --benchmark-only` for every paper figure.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
