"""Baseline remote-memory backends: the other points of Figure 1."""

from .base import BackendError, BaselineBackend, BaselineConfig, GroupHandle
from .batch_coded import BatchCodedBackend
from .compression import CompressedReplicationBackend
from .direct import DirectRemoteMemory
from .replication import ReplicationBackend
from .ssd_backup import SSDBackupBackend
from .swarm import SwarmReplicationBackend

__all__ = [
    "BackendError",
    "BaselineBackend",
    "BaselineConfig",
    "GroupHandle",
    "BatchCodedBackend",
    "CompressedReplicationBackend",
    "DirectRemoteMemory",
    "ReplicationBackend",
    "SSDBackupBackend",
    "SwarmReplicationBackend",
]
