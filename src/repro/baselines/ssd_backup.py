"""Local-SSD backup — the low-overhead, high-latency extreme (Infiniswap).

Each page is written to one remote machine *and* asynchronously backed up
to the local SSD through a bounded in-memory staging buffer. The four
§2.2 pathologies emerge naturally from this structure:

1. **Remote failure/eviction** — reads of affected pages fall back to the
   SSD (~100 µs), and the working set only recovers as pages are
   rewritten remotely (Fig 2a's slow recovery).
2. **Corruption** — a checksum mismatch on the remote copy forces the SSD
   path (Fig 2b).
3. **Background load** — a single whole-page read has no late binding, so
   congested NICs directly inflate latency (Fig 2c).
4. **Bursts** — when the staging buffer fills because the SSD cannot
   drain fast enough, *page writes block on disk bandwidth* (Fig 2d).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..net import RDMAError, RemoteAccessError
from ..obs import Span
from ..sim import Store
from .base import BackendError, BaselineBackend

__all__ = ["SSDBackupBackend"]


class SSDBackupBackend(BaselineBackend):
    """One remote copy plus an asynchronous local-disk backup."""

    name = "ssd_backup"

    def __init__(self, *args, staging_pages: int = 256, **kwargs):
        super().__init__(*args, **kwargs)
        self.client = self.cluster.machine(self.client_id)
        if self.client.ssd is None:
            raise BackendError(
                "SSD backup requires the client machine to have an SSD "
                "(build the cluster with with_ssd=True)"
            )
        self.ssd = self.client.ssd
        # Pages known to be safely on disk (content tracked by version).
        self.disk_pages: Dict[int, int] = {}
        self.disk_payloads: Dict[int, object] = {}
        self._staging: Store = Store(self.sim, capacity=staging_pages)
        self.sim.process(self._drain_staging(), name="ssd-drain")

    @property
    def memory_overhead(self) -> float:
        return 1.0  # the backup copy lives on disk, not in memory

    # -- write ---------------------------------------------------------------
    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handles = self._ensure_group(page_id, copies=1)
        offset = self.page_offset(page_id)
        version = self.versions.get(page_id, 0) + 1
        payload = self.make_payload(data, version)

        # Admission to the staging buffer can block: this is precisely the
        # §2.2 burst bottleneck — when the SSD cannot drain, page writes
        # slow to disk speed.
        yield self._staging.put((page_id, version, payload))
        phases.mark("staging")

        handle = handles[0]
        if handle.available:
            try:
                yield self._post_page_write(handle, offset, payload, span)
            except (RDMAError, RemoteAccessError):
                self.events.incr("remote_write_failures")
                self._try_remap(page_id)
        else:
            self._try_remap(page_id)
            new_handle = self.groups[self.group_of(page_id)][0]
            if new_handle.available:
                try:
                    yield self._post_page_write(new_handle, offset, payload, span)
                except (RDMAError, RemoteAccessError):
                    self.events.incr("remote_write_failures")
        phases.mark("network")

        self.record_integrity(page_id, data, version)
        self.write_latency.record(self.sim.now - start)
        self.events.incr("writes")
        return None

    def _drain_staging(self):
        """Background flusher: staging buffer -> local SSD."""
        while True:
            page_id, version, payload = yield self._staging.get()
            # The payload stays readable in buffer memory while the disk
            # write is in flight; durability (disk_pages) lands after.
            self.disk_payloads[page_id] = (
                payload.copy() if isinstance(payload, np.ndarray) else payload
            )
            yield self.ssd.write(self.config.page_size)
            self.disk_pages[page_id] = version
            self.events.incr("disk_backups")

    # -- read ------------------------------------------------------------------
    def _read_process(self, page_id: int, span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        self.events.incr("reads")
        if page_id not in self.versions:
            return None
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handle = self.groups[self.group_of(page_id)][0]
        offset = self.page_offset(page_id)

        if handle.available:
            try:
                payload = yield self._post_page_read(handle, offset, span)
            except (RDMAError, RemoteAccessError):
                payload = None
            if payload is not None and self.payload_ok(page_id, payload):
                phases.mark("network")
                self.read_latency.record(self.sim.now - start)
                return self.payload_to_bytes(payload)
            if payload is not None:
                self.events.incr("corrupt_remote_reads")
            phases.mark("network")

        # Fallback: the local SSD backup.
        payload = yield from self._read_from_disk(page_id)
        phases.mark("disk")
        self.read_latency.record(self.sim.now - start)
        return self.payload_to_bytes(payload)

    def _read_from_disk(self, page_id: int):
        self.events.incr("disk_reads")
        if page_id not in self.disk_pages:
            # Still sitting in the staging buffer: scan it (memory speed).
            for staged_page, version, payload in self._staging.items:
                if staged_page == page_id:
                    return payload
            if page_id in self.disk_payloads:
                # Drain in flight: the copy is still in buffer memory.
                return self.disk_payloads[page_id]
            self.events.incr("read_failures")
            raise BackendError(f"page {page_id} on neither remote nor disk")
        yield self.ssd.read(self.config.page_size)
        return self.disk_payloads[page_id]

    # -- failure handling -----------------------------------------------------
    def _try_remap(self, page_id: int) -> None:
        """Place a fresh remote slab for the page's group after a failure.

        Old pages stay disk-only until rewritten — the source of Fig 2a's
        slow post-failure recovery.
        """
        group_id = self.group_of(page_id)
        handle = self.groups[group_id][0]
        if handle.available:
            return
        try:
            self.replace_handle(group_id, 0)
            self.events.incr("remaps")
        except BackendError:
            pass
