"""Compressed far memory (zswap-style) with remote replication.

Models the §2.3 alternative: pages are compressed, then the compressed
copy is replicated to two remote machines for resilience. Latency gains
from moving fewer bytes are more than offset by (de)compression on the
critical path — the paper measures "more than 10 µs" for a 4 KB remote
page, which is where this backend lands.

Compression itself is *simulated* (latency constants and a configurable
ratio) because the test payloads are incompressible random bytes; the
stored payload keeps the original content so reads stay verifiable, while
the RDMA verbs move only ``ratio x page_size`` bytes.
"""

from __future__ import annotations

from typing import Optional

from ..obs import Span
from ..sim import Event
from .base import GroupHandle
from .replication import ReplicationBackend

__all__ = ["CompressedReplicationBackend"]


class CompressedReplicationBackend(ReplicationBackend):
    """Compress, then 2x-replicate the compressed page."""

    name = "compressed"

    def __init__(
        self,
        *args,
        compression_ratio: float = 0.67,
        compress_latency_us: float = 3.0,
        decompress_latency_us: float = 6.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if not 0 < compression_ratio <= 1:
            raise ValueError(f"ratio must be in (0, 1], got {compression_ratio}")
        self.compression_ratio = compression_ratio
        self.compress_latency_us = compress_latency_us
        self.decompress_latency_us = decompress_latency_us

    @property
    def memory_overhead(self) -> float:
        return self.copies * self.compression_ratio

    @property
    def wire_bytes(self) -> int:
        """Bytes a compressed page occupies on the wire."""
        return max(1, int(self.config.page_size * self.compression_ratio))

    # Verbs move compressed bytes.
    def _post_page_write(
        self, handle: GroupHandle, offset: int, payload, span: Optional[Span] = None
    ) -> Event:
        machine = self.fabric.machine(handle.machine_id)
        qp = self.fabric.qp(self.client_id, handle.machine_id)
        return qp.post_write(
            self.wire_bytes,
            apply=lambda: machine.write_split(handle.slab_id, offset, payload),
            span=span,
        )

    def _post_page_read(
        self, handle: GroupHandle, offset: int, span: Optional[Span] = None
    ) -> Event:
        machine = self.fabric.machine(handle.machine_id)
        qp = self.fabric.qp(self.client_id, handle.machine_id)
        return qp.post_read(
            self.wire_bytes,
            fetch=lambda: machine.read_split(handle.slab_id, offset),
            span=span,
        )

    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        # Compression sits on the critical path before any byte moves.
        yield self.sim.timeout(self.compress_latency_us)
        self.tracer.phases(span).mark("compress")
        result = yield from super()._write_process(page_id, data, span)
        # The parent recorded latency from its own start; fold the
        # compression stage back into the sample.
        if self.write_latency.samples:
            self.write_latency.samples[-1] += self.compress_latency_us
        return result

    def _read_process(self, page_id: int, span: Optional[Span] = None):
        payload = yield from super()._read_process(page_id, span)
        if payload is not None or self.payload_mode == "phantom":
            yield self.sim.timeout(self.decompress_latency_us)
            self.tracer.phases(span).mark("decompress")
            if self.read_latency.samples:
                self.read_latency.samples[-1] += self.decompress_latency_us
        return payload
