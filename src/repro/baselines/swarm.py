"""SWARM-style sub-RTT replication — the low-latency replication extreme.

SWARM (as surveyed in PAPERS.md) completes a replicated write in *less*
than one network round trip: the requester unblocks once the write has
been serialized onto the wire and propagated one way, while the replica
acknowledgements drain in the background. Latency approaches a raw
one-way write; the cost is a completion that runs ahead of durability —
a replica that dies between completion and ack delivery silently holds
no copy. The backend surfaces that window through two counters:
``sub_rtt_completions`` (writes completed before all acks) and
``post_completion_failures`` (replica writes that failed *after* the
client already considered the write complete).

Reads, re-replication and group placement are inherited unchanged from
:class:`~repro.baselines.replication.ReplicationBackend`; only the write
completion rule differs, which is exactly the knob the Hydra comparison
cares about (client-visible latency vs. the durability of the ack).
"""

from __future__ import annotations

from typing import Optional

from ..obs import Span
from .base import BackendError
from .replication import ReplicationBackend

__all__ = ["SwarmReplicationBackend"]


class SwarmReplicationBackend(ReplicationBackend):
    """Replication with sub-RTT write completion and background acks."""

    name = "swarm"

    def _write_once(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handles = self._ensure_group(page_id, self.copies)
        offset = self.page_offset(page_id)
        version = self.versions.get(page_id, 0) + 1
        payload = self.make_payload(data, version)

        live = [h for h in handles if h.available]
        if not live:
            group_id = self.group_of(page_id)
            for index, handle in enumerate(handles):
                if not handle.available:
                    try:
                        live.append(self.replace_handle(group_id, index))
                    except BackendError:
                        continue
            self.events.incr("group_replacements")
        if not live:
            self.events.incr("write_failures")
            raise BackendError(f"no replica reachable for page {page_id}")

        acks = [self._post_page_write(handle, offset, payload, span) for handle in live]
        # Sub-RTT completion: unblock once the payload has been serialized
        # out of the requester's NIC and reached the switch (half the
        # one-way path) — from there the fabric carries it to every
        # replica without further requester involvement. The delivery
        # confirmations are collected off the critical path.
        network = self.fabric.config
        wire_us = 0.5 * network.base_latency_us + network.transfer_us(
            self.config.page_size
        )
        yield self.sim.timeout(wire_us)
        phases.mark("sub_rtt_completion", replicas=len(acks))
        self.sim.process(
            self._collect_acks(page_id, list(acks)),
            name=f"swarm-acks:{page_id}",
        )

        self.record_integrity(page_id, data, version)
        self.write_latency.record(self.sim.now - start)
        self.events.incr("writes")
        self.events.incr("sub_rtt_completions")
        return None

    def _collect_acks(self, page_id: int, acks):
        """Background drain of the replica acks for one completed write."""
        for event in acks:
            if not event.processed:
                yield self._observe(event)
        failures = sum(1 for event in acks if not event.ok)
        if failures:
            # The client already moved on: these replicas missed the
            # write, and only background re-replication (or the next
            # overwrite) will repair them — the SWARM durability window.
            self.events.incr("post_completion_failures", failures)
