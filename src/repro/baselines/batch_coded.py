"""Batch-coded remote memory — the design §4 argues *against*.

Classic erasure-coded memory systems (EC-Cache et al.) code across large
objects or batches of pages: ``batch_pages`` pages form one stripe that is
split k ways and encoded together. That amortizes coding overhead but:

* writes wait for the batch to fill ("batch waiting time") or for a
  timeout before anything durable happens;
* reading *one* page requires fetching k splits of the *whole stripe* —
  ``batch_pages``-times the bytes of interest;
* an updated page cannot be patched in place: the stripe is immutable, so
  updates go to a fresh stripe (log-structured), leaving garbage behind.

Hydra codes each page independently precisely to avoid all three. This
backend exists so the trade-off is measurable (see
``benchmarks/bench_ablation_batch_coding.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster import PhantomSplit
from ..ec import PageCodec
from ..net import RDMAError, RemoteAccessError
from ..obs import Span
from .base import BackendError, BaselineBackend

__all__ = ["BatchCodedBackend"]


class BatchCodedBackend(BaselineBackend):
    """Erasure coding across ``batch_pages``-page stripes."""

    name = "batch_coded"

    def __init__(
        self,
        *args,
        k: int = 8,
        r: int = 2,
        batch_pages: int = 8,
        batch_timeout_us: float = 50.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if batch_pages < 1:
            raise ValueError(f"batch_pages must be >= 1, got {batch_pages}")
        self.k = k
        self.r = r
        self.batch_pages = batch_pages
        self.batch_timeout_us = batch_timeout_us
        self.stripe_bytes = batch_pages * self.config.page_size
        self.split_bytes = -(-self.stripe_bytes // k)
        self.codec = PageCodec(k, r, page_size=self.stripe_bytes)
        # page_id -> (stripe_id, slot). Updated pages point at new stripes.
        self.page_location: Dict[int, Tuple[int, int]] = {}
        self._stripe_count = 0
        self._open_batch: List[Tuple[int, object, object]] = []  # (page, payload, done)
        self._batch_timer = None

    @property
    def memory_overhead(self) -> float:
        """1 + r/k for live data; stale stripes add garbage on top."""
        return 1.0 + self.r / self.k

    # -- write: buffer into the open batch ---------------------------------
    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        done = self.sim.event(name=f"batch-write:{page_id}")
        if self.payload_mode == "real":
            if data is None or len(data) != self.config.page_size:
                raise BackendError(
                    f"real mode write needs {self.config.page_size} bytes"
                )
            payload = np.frombuffer(data, dtype=np.uint8).copy()
        else:
            payload = PhantomSplit(version=self.versions.get(page_id, 0) + 1)
        self._open_batch.append((page_id, payload, done))
        if len(self._open_batch) >= self.batch_pages:
            yield from self._seal_batch()
        else:
            self._arm_timer()
        # The write completes only when its stripe is sealed and written:
        # this wait IS the batch-waiting time of §4.
        yield done
        phases.mark("batch_wait")
        self.versions[page_id] = self.versions.get(page_id, 0) + 1
        if self.payload_mode == "real":
            self.record_integrity(page_id, data, self.versions[page_id])
        self.write_latency.record(self.sim.now - start)
        self.events.incr("writes")
        return None

    def _arm_timer(self) -> None:
        if self._batch_timer is not None:
            return

        def flush():
            yield self.sim.timeout(self.batch_timeout_us)
            self._batch_timer = None
            if self._open_batch:
                yield from self._seal_batch()

        self._batch_timer = self.sim.process(flush(), name="batch-flush")

    def _seal_batch(self):
        """Encode the open batch as one stripe and write its splits."""
        batch, self._open_batch = self._open_batch, []
        if not batch:
            return
        stripe_id = self._stripe_count
        self._stripe_count += 1
        # One split set per stripe, placed on (k + r) machines.
        split_handles = self._stripe_handles(stripe_id)

        if self.payload_mode == "real":
            stripe = bytearray(self.stripe_bytes)
            for slot, (page_id, payload, _done) in enumerate(batch):
                offset = slot * self.config.page_size
                stripe[offset : offset + self.config.page_size] = payload.tobytes()
            splits = self.codec.encode(bytes(stripe))
        else:
            splits = [
                PhantomSplit(version=1) for _ in range(self.k + self.r)
            ]

        acks = []
        for index, handle in enumerate(split_handles):
            payload = splits[index]
            machine = self.fabric.machine(handle.machine_id)
            qp = self.fabric.qp(self.client_id, handle.machine_id)
            acks.append(
                qp.post_write(
                    self.split_bytes,
                    apply=lambda m=machine, h=handle, p=payload: m.write_split(
                        h.slab_id, stripe_id, p
                    ),
                )
            )
        for ack in acks:
            try:
                yield ack
            except (RDMAError, RemoteAccessError):
                self.events.incr("stripe_write_failures")
        for slot, (page_id, _payload, done) in enumerate(batch):
            previous = self.page_location.get(page_id)
            if previous is not None:
                self.events.incr("garbage_pages")  # stale copy left behind
            self.page_location[page_id] = (stripe_id, slot)
            if not done.triggered:
                done.succeed()
        self.events.incr("stripes_written")

    def _stripe_handles(self, stripe_id: int):
        """(k + r) split locations for a stripe, one per machine."""
        key = -(stripe_id + 1)  # negative keys: stripe groups
        handles = self.groups.get(key)
        if handles is not None:
            return handles
        from .base import GroupHandle

        handles = []
        used = {self.client_id}
        for _ in range(self.k + self.r):
            machine = self._pick_machine(exclude=used)
            slab = None
            # Reuse our existing stripe slab on that machine if present.
            for existing in machine.hosted_slabs.values():
                if existing.owner_id == self.client_id and existing.range_id == -1:
                    slab = existing
                    break
            if slab is None:
                slab = machine.allocate_slab(self.config.slab_size_bytes)
                slab.map_to(self.client_id, -1, 0)
            handles.append(GroupHandle(machine_id=machine.id, slab_id=slab.slab_id))
            used.add(machine.id)
        self.groups[key] = handles
        return handles

    # -- read: fetch k whole-stripe splits ----------------------------------
    def _read_process(self, page_id: int, span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        self.events.incr("reads")
        location = self.page_location.get(page_id)
        if location is None:
            return None
        stripe_id, slot = location
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handles = self.groups[-(stripe_id + 1)]
        received: Dict[int, object] = {}
        pending = []
        for index, handle in enumerate(handles[: self.k]):
            machine = self.fabric.machine(handle.machine_id)
            qp = self.fabric.qp(self.client_id, handle.machine_id)
            pending.append(
                (
                    index,
                    qp.post_read(
                        self.split_bytes,
                        fetch=lambda m=machine, h=handle: m.read_split(
                            h.slab_id, stripe_id
                        ),
                        span=span,
                    ),
                )
            )
        for index, event in pending:
            try:
                received[index] = yield event
            except (RDMAError, RemoteAccessError):
                pass
        phases.mark("network", splits=len(received))
        if len(received) < self.k:
            self.events.incr("read_failures")
            raise BackendError(f"stripe {stripe_id} unreadable")

        page: Optional[bytes] = None
        if self.payload_mode == "real":
            stripe = self.codec.decode(
                {i: p for i, p in received.items() if isinstance(p, np.ndarray)}
            )
            offset = slot * self.config.page_size
            page = stripe[offset : offset + self.config.page_size]
        self.read_latency.record(self.sim.now - start)
        return page
