"""Shared machinery for the baseline remote-memory backends.

Every backend (Hydra's Resilience Manager included) exposes the same
*remote memory pool* protocol the VMM/VFS front-ends consume:

* ``write(page_id, data=None) -> Process`` — completes when the write
  returns to the application;
* ``read(page_id) -> Process`` — the process value is the page bytes
  (real mode) or ``None`` (phantom mode);
* ``read_latency`` / ``write_latency`` recorders and an ``events`` counter.

Baselines place remote memory at *page-group* granularity (a full slab of
contiguous pages per remote machine) using the coarse power-of-two-choices
that Infiniswap uses — deliberately coarser than Hydra's fine-grained
(k + r)-way batch placement, which is what Figure 17 measures.

Unlike Hydra, baselines bypass the Resource Monitor control plane and
allocate slabs directly on target machines (Infiniswap and Remote Regions
run their own daemons); memory accounting still goes through the shared
:class:`~repro.cluster.Machine` model so cluster-wide usage comparisons
are apples-to-apples.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cluster import Cluster, Machine, PhantomSplit
from ..obs import MetricsRegistry, Span, Tracer
from ..sim import Event, RandomSource

__all__ = ["BaselineConfig", "GroupHandle", "BaselineBackend", "BackendError"]


class BackendError(Exception):
    """A baseline backend could not serve a request."""


@dataclass
class BaselineConfig:
    """Common baseline parameters.

    ``software_overhead_us`` models the host-side block-I/O stack cost
    (bio submission, interrupt, wakeup) that Infiniswap/Remote Regions pay
    per request and that Hydra's run-to-completion/in-place design removes
    — it is what makes a whole-page remote read slower end-to-end than
    Hydra's parallel split reads (Fig 10).
    """

    page_size: int = 4096
    slab_size_bytes: int = 1 << 30
    software_overhead_us: float = 2.2
    placement_choices: int = 2  # coarse power of choices (Infiniswap)

    @property
    def pages_per_slab(self) -> int:
        return max(1, self.slab_size_bytes // self.page_size)


@dataclass
class GroupHandle:
    """One replica location of a page group."""

    machine_id: int
    slab_id: int
    available: bool = True


class BaselineBackend:
    """Base class: slab-group placement, verbs, checksums, failure hooks."""

    name = "baseline"

    def __init__(
        self,
        cluster: Cluster,
        client_id: int,
        config: Optional[BaselineConfig] = None,
        rng: Optional[RandomSource] = None,
        payload_mode: str = "real",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if payload_mode not in ("real", "phantom"):
            raise ValueError(f"unknown payload_mode {payload_mode!r}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        self.client_id = client_id
        self.config = config or BaselineConfig()
        self.rng = rng or RandomSource(client_id, f"{self.name}{client_id}")
        self.payload_mode = payload_mode

        obs = getattr(cluster, "obs", None)
        if tracer is None:
            tracer = obs.tracer if obs is not None else Tracer(self.sim, sample_every=0)
        if metrics is None:
            metrics = obs.metrics if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics

        self.groups: Dict[int, List[GroupHandle]] = {}
        self.versions: Dict[int, int] = {}
        self.checksums: Dict[int, int] = {}
        self.read_latency = metrics.latency(f"{self.name}.{client_id}.read")
        self.write_latency = metrics.latency(f"{self.name}.{client_id}.write")
        self.events = metrics.counter_group(f"{self.name}.{client_id}.events")
        self._watched: set = set()

    # -- protocol -----------------------------------------------------------
    @property
    def memory_overhead(self) -> float:
        raise NotImplementedError

    def write(self, page_id: int, data: Optional[bytes] = None, parent: Optional[Span] = None):
        span = self._request_span(f"{self.name}.write", page_id, parent)
        return self.sim.process(
            self._traced(self._write_process(page_id, data, span), span),
            name=f"{self.name}-write:{page_id}",
        )

    def read(self, page_id: int, parent: Optional[Span] = None):
        span = self._request_span(f"{self.name}.read", page_id, parent)
        return self.sim.process(
            self._traced(self._read_process(page_id, span), span),
            name=f"{self.name}-read:{page_id}",
        )

    def _request_span(self, name: str, page_id: int, parent: Optional[Span]) -> Optional[Span]:
        if parent is not None:
            return parent.child(
                name, cat="request", machine_id=self.client_id, tags={"page": page_id}
            )
        return self.tracer.start_trace(
            name, machine_id=self.client_id, tags={"page": page_id}
        )

    def _traced(self, gen, span: Optional[Span]):
        if span is None:
            return gen
        return self._traced_gen(gen, span)

    @staticmethod
    def _traced_gen(gen, span: Span):
        try:
            result = yield from gen
        except BaseException as exc:
            span.tags.setdefault("error", type(exc).__name__)
            span.finish()
            raise
        span.set_tag("outcome", "ok")
        span.finish()
        return result

    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        raise NotImplementedError

    def _read_process(self, page_id: int, span: Optional[Span] = None):
        raise NotImplementedError

    # -- placement ------------------------------------------------------------
    def group_of(self, page_id: int) -> int:
        return page_id // self.config.pages_per_slab

    def _ensure_group(self, page_id: int, copies: int) -> List[GroupHandle]:
        """Place ``copies`` slabs for the page's group, coarse power of
        ``placement_choices`` per copy (distinct machines)."""
        group_id = self.group_of(page_id)
        handles = self.groups.get(group_id)
        if handles is not None:
            return handles
        handles = []
        used = {self.client_id}
        for _copy in range(copies):
            machine = self._pick_machine(exclude=used)
            slab = machine.allocate_slab(self.config.slab_size_bytes)
            slab.map_to(self.client_id, group_id, _copy)
            handles.append(GroupHandle(machine_id=machine.id, slab_id=slab.slab_id))
            used.add(machine.id)
            self._watch(machine.id)
        self.groups[group_id] = handles
        self.events.incr("groups_placed")
        return handles

    def _pick_machine(self, exclude: set) -> Machine:
        candidates = [
            m for m in self.cluster.machines if m.alive and m.id not in exclude
        ]
        if not candidates:
            raise BackendError("no machine available for placement")
        sample = self.rng.sample(candidates, min(self.config.placement_choices, len(candidates)))
        viable = [m for m in sample if m.free_bytes >= self.config.slab_size_bytes]
        if not viable:
            viable = [
                m for m in candidates if m.free_bytes >= self.config.slab_size_bytes
            ]
            if not viable:
                raise BackendError("cluster out of donatable memory")
        return min(viable, key=lambda m: m.memory_utilization)

    def replace_handle(self, group_id: int, index: int) -> GroupHandle:
        """Re-place one replica of a group after its host died."""
        used = {h.machine_id for h in self.groups[group_id]} | {self.client_id}
        machine = self._pick_machine(exclude=used)
        slab = machine.allocate_slab(self.config.slab_size_bytes)
        slab.map_to(self.client_id, group_id, index)
        handle = GroupHandle(machine_id=machine.id, slab_id=slab.slab_id)
        self.groups[group_id][index] = handle
        self._watch(machine.id)
        return handle

    # -- verbs ------------------------------------------------------------------
    def _post_page_write(
        self, handle: GroupHandle, offset: int, payload, span: Optional[Span] = None
    ) -> Event:
        machine = self.fabric.machine(handle.machine_id)
        qp = self.fabric.qp(self.client_id, handle.machine_id)
        # Each destination stores an independent copy: corruption of one
        # replica must never reach the others through shared references.
        stored = payload.copy() if isinstance(payload, np.ndarray) else payload
        return qp.post_write(
            self.config.page_size,
            apply=lambda: machine.write_split(handle.slab_id, offset, stored),
            span=span,
        )

    def _post_page_read(
        self, handle: GroupHandle, offset: int, span: Optional[Span] = None
    ) -> Event:
        machine = self.fabric.machine(handle.machine_id)
        qp = self.fabric.qp(self.client_id, handle.machine_id)
        return qp.post_read(
            self.config.page_size,
            fetch=lambda: machine.read_split(handle.slab_id, offset),
            span=span,
        )

    def page_offset(self, page_id: int) -> int:
        return page_id % self.config.pages_per_slab

    # -- payloads & integrity ------------------------------------------------
    def make_payload(self, data: Optional[bytes], version: int):
        if self.payload_mode == "real":
            if data is None or len(data) != self.config.page_size:
                raise BackendError(
                    f"real mode write needs {self.config.page_size} bytes"
                )
            return np.frombuffer(data, dtype=np.uint8).copy()
        return PhantomSplit(version=version)

    def record_integrity(self, page_id: int, data: Optional[bytes], version: int) -> None:
        self.versions[page_id] = version
        if self.payload_mode == "real" and data is not None:
            self.checksums[page_id] = zlib.crc32(data)

    def payload_ok(self, page_id: int, payload) -> bool:
        """Client-side integrity check (checksum / version match)."""
        if payload is None:
            return False
        if isinstance(payload, PhantomSplit):
            return not payload.corrupt and payload.version == self.versions.get(page_id)
        if isinstance(payload, np.ndarray):
            expected = self.checksums.get(page_id)
            return expected is None or zlib.crc32(payload.tobytes()) == expected
        return False

    def payload_to_bytes(self, payload) -> Optional[bytes]:
        if isinstance(payload, np.ndarray):
            return payload.tobytes()
        return None

    # -- failure tracking ---------------------------------------------------------
    def _watch(self, machine_id: int) -> None:
        if machine_id in self._watched:
            return
        self._watched.add(machine_id)
        qp = self.fabric.qp(self.client_id, machine_id)
        qp.on_disconnect(self._on_machine_down)

    def _on_machine_down(self, machine_id: int) -> None:
        self.events.incr("disconnects")
        for group_id, handles in self.groups.items():
            for index, handle in enumerate(handles):
                if handle.machine_id == machine_id and handle.available:
                    handle.available = False
                    self.on_handle_lost(group_id, index)

    def on_handle_lost(self, group_id: int, index: int) -> None:
        """Subclass hook: react to a lost replica (default: nothing)."""
