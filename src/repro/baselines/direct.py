"""Non-resilient whole-page remote memory (Infiniswap / Remote Regions
primary data path, without any backup).

This is the latency reference for Figure 10: a single full-page one-sided
verb to one remote machine, plus the block-I/O software overhead that
kernel paging (Infiniswap) or the VFS layer (Remote Regions) pays per
request. It offers no fault tolerance — a remote failure loses the pages.
"""

from __future__ import annotations

from typing import Optional

from ..net import RDMAError, RemoteAccessError
from ..obs import Span
from .base import BackendError, BaselineBackend

__all__ = ["DirectRemoteMemory"]


class DirectRemoteMemory(BaselineBackend):
    """One remote copy, no resilience."""

    name = "direct"

    @property
    def memory_overhead(self) -> float:
        return 1.0

    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handle = self._ensure_group(page_id, copies=1)[0]
        if not handle.available:
            self.events.incr("write_failures")
            raise BackendError(f"remote host of page {page_id} is gone")
        version = self.versions.get(page_id, 0) + 1
        payload = self.make_payload(data, version)
        yield self._post_page_write(handle, self.page_offset(page_id), payload, span)
        phases.mark("network")
        self.record_integrity(page_id, data, version)
        self.write_latency.record(self.sim.now - start)
        self.events.incr("writes")
        return None

    def _read_process(self, page_id: int, span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        self.events.incr("reads")
        if page_id not in self.versions:
            return None
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handle = self.groups[self.group_of(page_id)][0]
        if not handle.available:
            self.events.incr("read_failures")
            raise BackendError(f"remote host of page {page_id} is gone")
        try:
            payload = yield self._post_page_read(handle, self.page_offset(page_id), span)
        except (RDMAError, RemoteAccessError) as exc:
            self.events.incr("read_failures")
            raise BackendError(str(exc))
        phases.mark("network")
        self.read_latency.record(self.sim.now - start)
        return self.payload_to_bytes(payload)
