"""In-memory replication — the high-performance, high-overhead extreme.

Each page is written in full to ``copies`` remote machines (2x by default,
as in the paper's evaluation: "we directly write each page over RDMA to
two remote machines' memory for a 2x overhead"). A remote I/O completes
after the confirmation from one of the replicas (§5.1); reads go to a
single replica and fail over on disconnect or checksum mismatch.

Lost replicas are re-replicated in the background by bulk-copying the
surviving slab to a new machine.
"""

from __future__ import annotations

from typing import Optional

from ..net import RDMAError, RemoteAccessError
from ..obs import Span
from ..sim import AnyOf
from .base import BackendError, BaselineBackend

__all__ = ["ReplicationBackend"]


class ReplicationBackend(BaselineBackend):
    """r+1-way in-memory replication with read failover and hedging."""

    name = "replication"

    def __init__(
        self,
        *args,
        copies: int = 2,
        write_acks: int = 1,
        hedged_reads: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if not 1 <= write_acks <= copies:
            raise ValueError(f"write_acks must be in [1, {copies}], got {write_acks}")
        self.copies = copies
        self.write_acks = write_acks
        self.hedged_reads = hedged_reads

    @property
    def memory_overhead(self) -> float:
        return float(self.copies)

    # -- write -------------------------------------------------------------
    _WRITE_RETRIES = 20
    _WRITE_BACKOFF_US = 500.0

    def _write_process(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        """Write with bounded retry: under cluster-wide memory pressure a
        group can transiently have no live replica and no machine with
        space for a new one; evictions elsewhere free memory shortly."""
        for attempt in range(self._WRITE_RETRIES):
            try:
                result = yield from self._write_once(page_id, data, span)
                return result
            except BackendError:
                self.events.incr("write_retries")
                yield self.sim.timeout(self._WRITE_BACKOFF_US)
        raise BackendError(
            f"write of page {page_id} failed after {self._WRITE_RETRIES} retries"
        )

    def _write_once(self, page_id: int, data: Optional[bytes], span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handles = self._ensure_group(page_id, self.copies)
        offset = self.page_offset(page_id)
        version = self.versions.get(page_id, 0) + 1
        payload = self.make_payload(data, version)

        # Dead replicas are replaced by the background re-replication
        # process; the write path only targets live ones — except when
        # *every* replica is gone, where the write itself re-places the
        # group (a write carries its own data; nothing needs recovering).
        live = [h for h in handles if h.available]
        if not live:
            group_id = self.group_of(page_id)
            for index, handle in enumerate(handles):
                if not handle.available:
                    try:
                        live.append(self.replace_handle(group_id, index))
                    except BackendError:
                        continue
            self.events.incr("group_replacements")
        if not live:
            self.events.incr("write_failures")
            raise BackendError(f"no replica reachable for page {page_id}")

        acks = [self._post_page_write(handle, offset, payload, span) for handle in live]
        succeeded = 0
        pending = list(acks)
        while pending and succeeded < self.write_acks:
            yield AnyOf(self.sim, [self._observe(e) for e in pending])
            still = []
            for event in pending:
                if event.triggered:
                    if event.ok:
                        succeeded += 1
                else:
                    still.append(event)
            pending = still
        phases.mark("wait_acks", replicas=len(acks), acked=succeeded)
        if succeeded < 1:
            self.events.incr("write_failures")
            raise BackendError(f"write of page {page_id} reached no replica")

        self.record_integrity(page_id, data, version)
        self.write_latency.record(self.sim.now - start)
        self.events.incr("writes")
        return None

    # -- read --------------------------------------------------------------
    def _read_process(self, page_id: int, span: Optional[Span] = None):
        phases = self.tracer.phases(span)
        start = self.sim.now
        self.events.incr("reads")
        if page_id not in self.versions:
            return None
        yield self.sim.timeout(self.config.software_overhead_us)
        phases.mark("software")
        handles = self.groups[self.group_of(page_id)]
        offset = self.page_offset(page_id)
        order = [h for h in handles if h.available] + [
            h for h in handles if not h.available
        ]
        if self.hedged_reads and len(order) > 1:
            payload = yield from self._hedged_read(order[:2], offset, page_id, span)
            if payload is not None:
                phases.mark("network")
                self.read_latency.record(self.sim.now - start)
                return self.payload_to_bytes(payload)
            order = order[2:]
        for handle in order:
            try:
                payload = yield self._post_page_read(handle, offset, span)
            except (RDMAError, RemoteAccessError):
                self.events.incr("read_failovers")
                continue
            if self.payload_ok(page_id, payload):
                phases.mark("network")
                self.read_latency.record(self.sim.now - start)
                return self.payload_to_bytes(payload)
            self.events.incr("corrupt_replica_reads")
        self.events.incr("read_failures")
        raise BackendError(f"no valid replica for page {page_id}")

    def _hedged_read(self, handles, offset: int, page_id: int, span: Optional[Span] = None):
        """Issue two reads at once, take the first valid one — doubles the
        read bandwidth, which is the §2.3 criticism of hedging."""
        self.events.incr("hedged_reads")
        pending = {
            i: self._post_page_read(h, offset, span) for i, h in enumerate(handles)
        }
        while pending:
            yield AnyOf(self.sim, [self._observe(e) for e in pending.values()])
            for key in list(pending):
                event = pending[key]
                if not event.triggered:
                    continue
                del pending[key]
                if event.ok and self.payload_ok(page_id, event.value):
                    return event.value
        return None

    # -- failure handling -----------------------------------------------------
    def on_handle_lost(self, group_id: int, index: int) -> None:
        self.sim.process(
            self._rereplicate(group_id, index), name=f"rereplicate:{group_id}/{index}"
        )

    def _rereplicate(self, group_id: int, index: int):
        """Background copy of a surviving replica slab to a new machine."""
        if self.groups[group_id][index].available:
            return  # already re-placed (e.g. by a write that found 0 live)
        survivors = [h for h in self.groups[group_id] if h.available]
        if not survivors:
            self.events.incr("groups_lost")
            return
        source = survivors[0]
        try:
            new_handle = self.replace_handle(group_id, index)
        except BackendError:
            self.events.incr("rereplicate_failed")
            return
        # Not ready until the copy lands: reads (and evictors) must not
        # treat an empty replica as valid.
        new_handle.available = False
        src_machine = self.fabric.machine(source.machine_id)
        dst_machine = self.fabric.machine(new_handle.machine_id)
        qp = self.fabric.qp(self.client_id, source.machine_id)

        def snapshot():
            slab = src_machine.hosted_slabs.get(source.slab_id)
            if slab is None:
                raise RemoteAccessError("source slab vanished")
            return dict(slab.pages)

        src_slab = src_machine.hosted_slabs.get(source.slab_id)
        used = src_slab.touched_pages if src_slab else 0
        try:
            pages = yield qp.post_read(
                max(1, used) * self.config.page_size, fetch=snapshot
            )
        except (RDMAError, RemoteAccessError):
            self.events.incr("rereplicate_failed")
            return
        dst_slab = dst_machine.hosted_slabs.get(new_handle.slab_id)
        if dst_slab is not None:
            dst_slab.pages.update(pages)
            new_handle.available = True
        self.events.incr("rereplications")

    def _observe(self, event):
        """Shield an event so its failure doesn't crash an AnyOf."""
        shield = self.sim.event(name="observe")
        if event.processed:
            shield.succeed()
            return shield
        event.callbacks.append(lambda _e: shield.succeed() if not shield.triggered else None)
        return shield
