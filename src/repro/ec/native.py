"""Runtime-compiled native GF(2^8) slab kernel (optional fast path).

The numpy table-gather kernels top out well below a GB/s on this
workload because every byte pays index arithmetic in the gather loop.
The classic fix — the one ISA-L (the library Hydra's kernel module
links) uses — is the SSSE3/AVX2 ``pshufb`` nibble-table kernel: a
GF(2^8) multiply is linear over XOR, so ``c*x == c*(x & 0x0f) ^
c*(x & 0xf0)`` and both halves are 16-entry lookups that fit one vector
shuffle. That turns a coefficient application into ~3 vector ops per 32
bytes, which is memory-bound rather than gather-bound.

Rather than shipping a prebuilt extension (the repo stays pure Python),
the C source below is compiled **at first use** with whatever ``cc`` /
``gcc`` the host already has, cached under ``~/.cache/repro-hydra`` keyed
by a hash of the source and flags, and loaded through :mod:`ctypes`. Any
failure — no compiler, sandboxed filesystem, exotic arch — degrades
silently to the numpy kernels, which produce byte-identical output (the
property tests pin both paths against the per-page reference).

Set ``REPRO_EC_NATIVE=0`` to force the numpy path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

import numpy as np

from .galois import MUL_TABLE

__all__ = ["NativeGF", "load_native", "native_kernel_name"]

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <string.h>

#if defined(__AVX2__)
#include <immintrin.h>
#define GF_ISA 2
#elif defined(__SSSE3__)
#include <tmmintrin.h>
#define GF_ISA 1
#else
#define GF_ISA 0
#endif

int gf_kernel_isa(void) { return GF_ISA; }

/* nib is a 32-byte table: nib[0..15] = c*n, nib[16..31] = c*(n<<4).
   Exact in GF(2^8): multiplication is linear over XOR, so
   c*x = c*(x & 0x0f) ^ c*(x & 0xf0). */

#if GF_ISA == 2
static void gf_mul_one(const uint8_t* nib, const uint8_t* x, uint8_t* y,
                       size_t n, int accumulate) {
    __m256i lo = _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i*)nib));
    __m256i hi = _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i*)(nib + 16)));
    __m256i mask = _mm256_set1_epi8(0x0f);
    size_t i = 0;
    if (accumulate) {
        for (; i + 32 <= n; i += 32) {
            __m256i v = _mm256_loadu_si256((const __m256i*)(x + i));
            __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
            __m256i h = _mm256_shuffle_epi8(
                hi, _mm256_and_si256(_mm256_srli_epi16(v, 4), mask));
            __m256i acc = _mm256_loadu_si256((const __m256i*)(y + i));
            _mm256_storeu_si256((__m256i*)(y + i),
                _mm256_xor_si256(acc, _mm256_xor_si256(l, h)));
        }
        for (; i < n; i++)
            y[i] ^= (uint8_t)(nib[x[i] & 0x0f] ^ nib[16 + (x[i] >> 4)]);
    } else {
        for (; i + 32 <= n; i += 32) {
            __m256i v = _mm256_loadu_si256((const __m256i*)(x + i));
            __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
            __m256i h = _mm256_shuffle_epi8(
                hi, _mm256_and_si256(_mm256_srli_epi16(v, 4), mask));
            _mm256_storeu_si256((__m256i*)(y + i), _mm256_xor_si256(l, h));
        }
        for (; i < n; i++)
            y[i] = (uint8_t)(nib[x[i] & 0x0f] ^ nib[16 + (x[i] >> 4)]);
    }
}
#elif GF_ISA == 1
static void gf_mul_one(const uint8_t* nib, const uint8_t* x, uint8_t* y,
                       size_t n, int accumulate) {
    __m128i lo = _mm_loadu_si128((const __m128i*)nib);
    __m128i hi = _mm_loadu_si128((const __m128i*)(nib + 16));
    __m128i mask = _mm_set1_epi8(0x0f);
    size_t i = 0;
    if (accumulate) {
        for (; i + 16 <= n; i += 16) {
            __m128i v = _mm_loadu_si128((const __m128i*)(x + i));
            __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
            __m128i h = _mm_shuffle_epi8(
                hi, _mm_and_si128(_mm_srli_epi16(v, 4), mask));
            __m128i acc = _mm_loadu_si128((const __m128i*)(y + i));
            _mm_storeu_si128((__m128i*)(y + i),
                _mm_xor_si128(acc, _mm_xor_si128(l, h)));
        }
        for (; i < n; i++)
            y[i] ^= (uint8_t)(nib[x[i] & 0x0f] ^ nib[16 + (x[i] >> 4)]);
    } else {
        for (; i + 16 <= n; i += 16) {
            __m128i v = _mm_loadu_si128((const __m128i*)(x + i));
            __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
            __m128i h = _mm_shuffle_epi8(
                hi, _mm_and_si128(_mm_srli_epi16(v, 4), mask));
            _mm_storeu_si128((__m128i*)(y + i), _mm_xor_si128(l, h));
        }
        for (; i < n; i++)
            y[i] = (uint8_t)(nib[x[i] & 0x0f] ^ nib[16 + (x[i] >> 4)]);
    }
}
#else
static void gf_mul_one(const uint8_t* nib, const uint8_t* x, uint8_t* y,
                       size_t n, int accumulate) {
    if (accumulate)
        for (size_t i = 0; i < n; i++)
            y[i] ^= (uint8_t)(nib[x[i] & 0x0f] ^ nib[16 + (x[i] >> 4)]);
    else
        for (size_t i = 0; i < n; i++)
            y[i] = (uint8_t)(nib[x[i] & 0x0f] ^ nib[16 + (x[i] >> 4)]);
}
#endif

static void gf_xor_rows(const uint8_t* x, uint8_t* y, size_t n, int accumulate) {
    if (accumulate) {
        for (size_t i = 0; i < n; i++) y[i] ^= x[i];
    } else {
        memcpy(y, x, n);
    }
}

/* One (nr, ns) matrix application onto an (ns, n) block with arbitrary
   row strides: out[r] = XOR_s coef[r*ns+s] * src_block[s]. */
static void gf_block_apply(const uint8_t* nibs, const uint8_t* coef,
                           const uint8_t* src, uint8_t* out,
                           size_t nr, size_t ns, size_t n) {
    for (size_t r = 0; r < nr; r++) {
        uint8_t* dst = out + r * n;
        int first = 1;
        for (size_t s = 0; s < ns; s++) {
            uint8_t c = coef[r * ns + s];
            if (c == 0) continue;
            const uint8_t* row = src + s * n;
            if (c == 1) gf_xor_rows(row, dst, n, !first);
            else gf_mul_one(nibs + (size_t)c * 32, row, dst, n, !first);
            first = 0;
        }
        if (first) memset(dst, 0, n);
    }
}

/* out[r*n..] = XOR_s coef[r*ns+s] * src[s*n..] over a contiguous
   (ns, n) source slab. nibs is the 256x32 nibble-table block. */
void gf_matrix_apply(const uint8_t* nibs, const uint8_t* coef,
                     const uint8_t* src, uint8_t* out,
                     size_t nr, size_t ns, size_t n) {
    gf_block_apply(nibs, coef, src, out, nr, ns, n);
}

/* Same product, but the source rows live at scattered addresses (the
   per-page codec holds splits as separate arrays). */
void gf_matrix_apply_rows(const uint8_t* nibs, const uint8_t* coef,
                          const uint8_t* const* rows, uint8_t* out,
                          size_t nr, size_t ns, size_t n) {
    for (size_t r = 0; r < nr; r++) {
        uint8_t* dst = out + r * n;
        int first = 1;
        for (size_t s = 0; s < ns; s++) {
            uint8_t c = coef[r * ns + s];
            if (c == 0) continue;
            if (c == 1) gf_xor_rows(rows[s], dst, n, !first);
            else gf_mul_one(nibs + (size_t)c * 32, rows[s], dst, n, !first);
            first = 0;
        }
        if (first) memset(dst, 0, n);
    }
}

/* Whole-slab product: apply one matrix to every page of a 3-D
   (pages, rows, n) stack. Byte strides let src/out be row slices of a
   larger codeword layout (e.g. parity written straight into the
   (pages, k+r, n) output at offset k*n). Each page's working set is a
   few KB, so rows stay L1-resident across output rows — this beats the
   flat layout + transpose-copy formulation on every slab shape. */
void gf_matrix_apply_paged(const uint8_t* nibs, const uint8_t* coef,
                           const uint8_t* src, uint8_t* out,
                           size_t npages, size_t nr, size_t ns, size_t n,
                           size_t src_stride, size_t out_stride) {
    for (size_t p = 0; p < npages; p++)
        gf_block_apply(nibs, coef, src + p * src_stride,
                       out + p * out_stride, nr, ns, n);
}

/* Same, with per-page source pointers: pages[p] is a contiguous (ns, n)
   block (a raw page buffer — k splits back to back), so whole-slab
   encode reads the caller's bytes objects with no staging copy. */
void gf_matrix_apply_pages(const uint8_t* nibs, const uint8_t* coef,
                           const uint8_t* const* pages, uint8_t* out,
                           size_t npages, size_t nr, size_t ns, size_t n,
                           size_t out_stride) {
    for (size_t p = 0; p < npages; p++)
        gf_block_apply(nibs, coef, pages[p], out + p * out_stride, nr, ns, n);
}
"""


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-hydra")


def _compile(source: str) -> Optional[str]:
    """Compile ``source`` to a cached shared object; None on any failure."""
    flag_sets = (
        ["-O3", "-march=native", "-shared", "-fPIC"],
        ["-O3", "-shared", "-fPIC"],  # cross-arch fallback
    )
    for compiler in ("cc", "gcc"):
        for flags in flag_sets:
            tag = hashlib.sha256(
                ("\x00".join([source, compiler] + flags)).encode()
            ).hexdigest()[:16]
            try:
                directory = _cache_dir()
                os.makedirs(directory, exist_ok=True)
            except OSError:
                directory = tempfile.mkdtemp(prefix="repro-gf-")
            so_path = os.path.join(directory, f"gf_{tag}.so")
            if os.path.exists(so_path):
                return so_path
            c_path = os.path.join(directory, f"gf_{tag}.c")
            try:
                with open(c_path, "w") as fh:
                    fh.write(source)
                # Build to a temp name then rename: concurrent processes
                # (the -j N shard runner) race on the cache slot, and a
                # half-written .so must never be dlopen'd.
                tmp_path = so_path + f".tmp{os.getpid()}"
                result = subprocess.run(
                    [compiler, *flags, "-o", tmp_path, c_path],
                    capture_output=True,
                    timeout=60,
                )
                if result.returncode != 0:
                    continue
                os.replace(tmp_path, so_path)
                return so_path
            except (OSError, subprocess.SubprocessError):
                continue
    return None


class NativeGF:
    """ctypes wrapper around the compiled kernel.

    Holds the 256x32 nibble-table block (derived from ``MUL_TABLE``, so
    the native path performs the exact same field lookups as the numpy
    path) and exposes the two matrix-apply entry points the slab and
    per-page kernels dispatch to.
    """

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.gf_matrix_apply.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_size_t] * 3
        lib.gf_matrix_apply.restype = None
        lib.gf_matrix_apply_rows.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_size_t] * 3
        lib.gf_matrix_apply_rows.restype = None
        lib.gf_matrix_apply_paged.argtypes = (
            [ctypes.c_void_p] * 4 + [ctypes.c_size_t] * 6
        )
        lib.gf_matrix_apply_paged.restype = None
        lib.gf_matrix_apply_pages.argtypes = (
            [ctypes.c_void_p] * 4 + [ctypes.c_size_t] * 5
        )
        lib.gf_matrix_apply_pages.restype = None
        lib.gf_kernel_isa.restype = ctypes.c_int
        self.isa = {0: "scalar", 1: "ssse3", 2: "avx2"}[int(lib.gf_kernel_isa())]
        nibs = np.zeros((256, 32), dtype=np.uint8)
        low = np.arange(16)
        for c in range(256):
            nibs[c, :16] = MUL_TABLE[c, low]
            nibs[c, 16:] = MUL_TABLE[c, low << 4]
        self._nibs = np.ascontiguousarray(nibs)
        self._nibs_ptr = self._nibs.ctypes.data
        self._apply = lib.gf_matrix_apply
        self._apply_rows = lib.gf_matrix_apply_rows
        self._apply_paged = lib.gf_matrix_apply_paged
        self._apply_pages = lib.gf_matrix_apply_pages
        # Scattered-row staging buffer: copying k ~512 B rows into one
        # contiguous block costs ~2.5 us while extracting k raw pointers
        # via ``.ctypes.data`` costs ~13 us (each access builds a fresh
        # ctypes interface object) — so the RM decode/verify hot path
        # stages and calls the flat kernel with one cached pointer.
        self._stage: Optional[np.ndarray] = None
        self._stage_ptr = 0
        self._stage_flat: Optional[np.ndarray] = None

    def matrix_apply(self, coef: np.ndarray, src: np.ndarray, out: np.ndarray) -> None:
        """``out = coef @ src`` over GF(2^8), all C-contiguous uint8."""
        nr, ns = coef.shape
        self._apply(
            self._nibs_ptr,
            coef.ctypes.data,
            src.ctypes.data,
            out.ctypes.data,
            nr,
            ns,
            src.shape[1],
        )

    def matrix_apply_rows(
        self, coef: np.ndarray, rows, out: np.ndarray, coef_ptr: Optional[int] = None
    ) -> None:
        """Like :meth:`matrix_apply` with scattered 1-D source rows.

        The rows are staged into a persistent contiguous buffer (cheaper
        than per-row pointer extraction; strided rows are normalized by
        the same copy) and the flat kernel runs once. ``coef_ptr`` lets
        plan caches pass the coefficient matrix's raw address so the hot
        path performs a single ``.ctypes.data`` access (for ``out``).
        """
        nr, ns = coef.shape
        n = rows[0].shape[0]
        stage = self._stage
        if stage is None or stage.shape[0] < ns or stage.shape[1] != n:
            self._stage = stage = np.empty((max(ns + nr, 24), n), dtype=np.uint8)
            self._stage_ptr = stage.ctypes.data
            self._stage_flat = stage.reshape(-1)
        np.concatenate(rows, out=self._stage_flat[: ns * n])
        self._apply(
            self._nibs_ptr,
            coef_ptr if coef_ptr is not None else coef.ctypes.data,
            self._stage_ptr,
            out.ctypes.data,
            nr,
            ns,
            n,
        )

    def matrix_apply_rows_alloc(
        self,
        coef: np.ndarray,
        rows,
        coef_ptr: Optional[int] = None,
        copy: bool = True,
    ) -> np.ndarray:
        """:meth:`matrix_apply_rows` that also owns the output buffer.

        The product lands in the tail rows of the staging buffer (cached
        pointer, so the hot path performs zero ``.ctypes`` accesses when
        ``coef_ptr`` is given — each such access costs ~1.6 us). With
        ``copy=False`` the returned array is a *view* of the stage, valid
        only until the next native call; callers that consume the result
        immediately (verify) use it to skip the copy.
        """
        nr, ns = coef.shape
        n = rows[0].shape[0]
        stage = self._stage
        if stage is None or stage.shape[0] < ns + nr or stage.shape[1] != n:
            self._stage = stage = np.empty((max(ns + nr, 24), n), dtype=np.uint8)
            self._stage_ptr = stage.ctypes.data
            self._stage_flat = stage.reshape(-1)
        np.concatenate(rows, out=self._stage_flat[: ns * n])
        self._apply(
            self._nibs_ptr,
            coef_ptr if coef_ptr is not None else coef.ctypes.data,
            self._stage_ptr,
            self._stage_ptr + ns * n,
            nr,
            ns,
            n,
        )
        out = stage[ns : ns + nr]
        return out.copy() if copy else out

    def matrix_apply_paged(
        self,
        coef: np.ndarray,
        src: np.ndarray,
        out: np.ndarray,
        src_stride: Optional[int] = None,
        out_stride: Optional[int] = None,
    ) -> None:
        """Apply ``coef`` page-wise over a 3-D (pages, rows, n) stack.

        ``src``/``out`` are C-contiguous uint8 stacks; the optional byte
        strides let either one be a row slice of a wider codeword layout
        (default: tight stacks, stride = rows * n).
        """
        npages = src.shape[0]
        nr, ns = coef.shape
        n = src.shape[2]
        self._apply_paged(
            self._nibs_ptr,
            coef.ctypes.data,
            src.ctypes.data,
            out.ctypes.data,
            npages,
            nr,
            ns,
            n,
            src_stride if src_stride is not None else ns * n,
            out_stride if out_stride is not None else nr * n,
        )

    def matrix_apply_pages(
        self,
        coef: np.ndarray,
        pages,
        out: np.ndarray,
        out_stride: Optional[int] = None,
    ) -> None:
        """Like :meth:`matrix_apply_paged` but each source page is a
        separate ``bytes`` buffer (ns * n bytes, k splits back to back),
        read in place — zero staging copies on the encode path."""
        npages = len(pages)
        nr, ns = coef.shape
        n = out.shape[-1]
        ptrs = (ctypes.c_char_p * npages)(*pages)
        self._apply_pages(
            self._nibs_ptr,
            coef.ctypes.data,
            ptrs,
            out.ctypes.data,
            npages,
            nr,
            ns,
            n,
            out_stride if out_stride is not None else nr * n,
        )


_NATIVE: Optional[NativeGF] = None
_TRIED = False


def load_native() -> Optional[NativeGF]:
    """The process-wide native kernel, or None (numpy fallback)."""
    global _NATIVE, _TRIED
    if _TRIED:
        return _NATIVE
    _TRIED = True
    if os.environ.get("REPRO_EC_NATIVE", "1") == "0":
        return None
    so_path = _compile(_C_SOURCE)
    if so_path is None:
        return None
    try:
        _NATIVE = NativeGF(ctypes.CDLL(so_path))
    except OSError:
        _NATIVE = None
    return _NATIVE


def native_kernel_name() -> str:
    """Diagnostic label for benchmark metadata: avx2/ssse3/scalar/numpy."""
    kernel = load_native()
    return kernel.isa if kernel is not None else "numpy"
