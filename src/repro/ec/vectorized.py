"""Vectorized multi-page Reed-Solomon operations.

Slab regeneration re-encodes one split position for *every* page of a
slab (§4.4); doing that page-by-page through the scalar codec would cost
a Python-level matrix solve per page. These helpers batch pages that
share a source-position set into a single GF(2^8) matmul:

    target_split = G[t] @ inv(G[rows]) @ stacked_sources

They are exact: every output equals what the per-page codec would
produce (tested against it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .matrix import gf_matmul
from .rs import DecodeError, ReedSolomonCode

__all__ = [
    "rebuild_transform",
    "rebuild_position",
    "encode_pages",
    "decode_pages",
    "correct_pages",
    "reencode_split_pages",
]


def rebuild_transform(
    code: ReedSolomonCode, source_positions: Sequence[int], target_position: int
) -> np.ndarray:
    """The 1 x k GF matrix mapping k source splits to the target split."""
    positions = list(source_positions)
    if len(positions) != code.k:
        raise DecodeError(
            f"need exactly k={code.k} source positions, got {len(positions)}"
        )
    if not 0 <= target_position < code.n:
        raise DecodeError(f"target position {target_position} out of range")
    return code.rebuild_row(positions, target_position)


def rebuild_position(
    code: ReedSolomonCode,
    sources: Dict[int, Dict[int, np.ndarray]],
    target_position: int,
    split_size: int,
) -> Dict[int, np.ndarray]:
    """Rebuild the target split of every recoverable page.

    ``sources`` maps split position -> {page_id -> split payload}. A page
    is recoverable when at least ``k`` positions hold it; pages are
    grouped by their (first k) source-position tuple so each group costs
    one matmul.

    Returns {page_id -> rebuilt split}.
    """
    groups: Dict[Tuple[int, ...], List[int]] = {}
    universe: set = set()
    for snapshot in sources.values():
        universe.update(snapshot)
    for page_id in universe:
        positions = tuple(
            sorted(
                position
                for position, snapshot in sources.items()
                if isinstance(snapshot.get(page_id), np.ndarray)
                and len(snapshot[page_id]) == split_size
            )[: code.k]
        )
        if len(positions) == code.k:
            groups.setdefault(positions, []).append(page_id)

    rebuilt: Dict[int, np.ndarray] = {}
    for positions, pages in groups.items():
        transform = rebuild_transform(code, positions, target_position)
        stacked = np.zeros((code.k, len(pages) * split_size), dtype=np.uint8)
        for row, position in enumerate(positions):
            snapshot = sources[position]
            for column, page_id in enumerate(pages):
                stacked[
                    row, column * split_size : (column + 1) * split_size
                ] = snapshot[page_id]
        out = gf_matmul(transform, stacked)[0]
        for column, page_id in enumerate(pages):
            rebuilt[page_id] = out[
                column * split_size : (column + 1) * split_size
            ].copy()
    return rebuilt


def encode_pages(
    code: ReedSolomonCode, data_splits_stack: np.ndarray
) -> np.ndarray:
    """Encode many pages at once.

    ``data_splits_stack`` has shape (pages, k, split_size); the result has
    shape (pages, n, split_size) with data splits first, parity after —
    identical to calling ``encode_page`` per page.
    """
    stack = np.asarray(data_splits_stack, dtype=np.uint8)
    if stack.ndim != 3 or stack.shape[1] != code.k:
        raise DecodeError(
            f"expected (pages, k={code.k}, split) stack, got {stack.shape}"
        )
    pages, _k, split_size = stack.shape
    # One preallocated output instead of a stack+parity concatenate copy.
    out = np.empty((pages, code.n, split_size), dtype=np.uint8)
    out[:, : code.k] = stack
    if code.r:
        flat = stack.transpose(1, 0, 2).reshape(code.k, pages * split_size)
        parity_flat = gf_matmul(code.generator[code.k :], flat)
        out[:, code.k :] = parity_flat.reshape(
            code.r, pages, split_size
        ).transpose(1, 0, 2)
    return out


def decode_pages(
    code: ReedSolomonCode, indices: Sequence[int], payload_stack: np.ndarray
) -> np.ndarray:
    """Decode many pages that all arrived with the same split indices.

    ``payload_stack`` has shape (pages, k, split_size): row ``j`` of page
    ``i`` is the payload received at split index ``indices[j]``. Returns
    the (pages, k, split_size) data splits — identical to calling
    ``code.decode`` per page with those indices.
    """
    stack = np.asarray(payload_stack, dtype=np.uint8)
    index_tuple = tuple(indices)
    if stack.ndim != 3 or stack.shape[1] != len(index_tuple):
        raise DecodeError(
            f"expected (pages, {len(index_tuple)}, split) stack, got {stack.shape}"
        )
    if len(index_tuple) != code.k:
        raise DecodeError(
            f"need exactly k={code.k} indices to decode, got {len(index_tuple)}"
        )
    if index_tuple == tuple(range(code.k)):
        return stack  # all-systematic fast path
    pages, _k, split_size = stack.shape
    flat = stack.transpose(1, 0, 2).reshape(code.k, pages * split_size)
    decoded = gf_matmul(code.decode_matrix(index_tuple), flat)
    return decoded.reshape(code.k, pages, split_size).transpose(1, 0, 2)


def correct_pages(
    code: ReedSolomonCode,
    indices: Sequence[int],
    payload_stack: np.ndarray,
    max_errors: Optional[int] = None,
    best_effort: bool = False,
) -> Tuple[np.ndarray, List[List[int]]]:
    """Correct many pages that all arrived with the same split indices.

    ``payload_stack`` has shape (pages, m, split_size) with row ``j`` of
    each page holding the payload received at ``indices[j]``. Returns
    ``(data_stack, corrupted)``: the (pages, k, split_size) corrected data
    splits and, per page, the located corrupt split indices.

    Equivalent to calling ``code.correct`` page by page in stack order —
    including raising the same :class:`DecodeError` the first failing page
    would raise — but the pages that turn out clean (the overwhelmingly
    common case in a corruption sweep) share *one* batched residual check
    and *one* batched decode, so per-page cost approaches plain decode.
    """
    stack = np.asarray(payload_stack, dtype=np.uint8)
    idx = [int(i) for i in indices]
    m = len(idx)
    if len(set(idx)) != m:
        raise DecodeError(f"duplicate split indices in {idx}")
    if stack.ndim != 3 or stack.shape[1] != m:
        raise DecodeError(
            f"expected (pages, {m}, split) stack, got {stack.shape}"
        )
    # Same preconditions (and messages) as ``ReedSolomonCode.correct``.
    if max_errors is None:
        max_errors = max(0, (m - code.k - 1) // 2)
    needed = code.k + 2 * max_errors + 1
    if m < needed and not best_effort:
        raise DecodeError(
            f"correcting {max_errors} errors needs {needed} splits, got {m}"
        )
    if m < code.k + 1:
        raise DecodeError(
            f"localization needs at least k + 1 = {code.k + 1} splits, got {m}"
        )
    order = sorted(range(m), key=idx.__getitem__)
    if order != list(range(m)):
        stack = np.ascontiguousarray(stack[:, order])
        idx = [idx[pos] for pos in order]
    pages, _m, split_size = stack.shape
    corrupted: List[List[int]] = [[] for _ in range(pages)]
    if pages == 0:
        return np.empty((0, code.k, split_size), dtype=np.uint8), corrupted

    # Batched residual over every page at once: expected extras from the
    # pivot (first k) columns vs the extras actually received.
    pivot = stack[:, : code.k]
    flat = pivot.transpose(1, 0, 2).reshape(code.k, pages * split_size)
    transform = code._extras_transform(tuple(idx))
    expected = gf_matmul(transform, flat).reshape(m - code.k, pages, split_size)
    actual = stack[:, code.k :].transpose(1, 0, 2)
    dirty = np.nonzero((expected != actual).any(axis=(0, 2)))[0]

    out = decode_pages(code, idx[: code.k], pivot)
    if len(dirty):
        out = np.ascontiguousarray(out)
        for page in dirty:
            page = int(page)
            received = {idx[row]: stack[page, row] for row in range(m)}
            data, bad = code.correct(
                received, max_errors=max_errors, best_effort=best_effort
            )
            out[page] = data
            corrupted[page] = bad
    return out, corrupted


def reencode_split_pages(
    code: ReedSolomonCode, data_splits_stack: np.ndarray, index: int
) -> np.ndarray:
    """Regenerate split ``index`` of many pages in one matmul.

    ``data_splits_stack`` has shape (pages, k, split_size); returns a
    (pages, split_size) array equal to per-page ``reencode_split``.
    """
    stack = np.asarray(data_splits_stack, dtype=np.uint8)
    if stack.ndim != 3 or stack.shape[1] != code.k:
        raise DecodeError(
            f"expected (pages, k={code.k}, split) stack, got {stack.shape}"
        )
    if not 0 <= index < code.n:
        raise DecodeError(f"split index {index} out of range 0..{code.n - 1}")
    if index < code.k:
        return stack[:, index].copy()
    pages, _k, split_size = stack.shape
    flat = stack.transpose(1, 0, 2).reshape(code.k, pages * split_size)
    row = gf_matmul(code.generator[index : index + 1], flat)[0]
    return row.reshape(pages, split_size)
