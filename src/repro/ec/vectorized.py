"""Vectorized multi-page Reed-Solomon operations.

Slab regeneration re-encodes one split position for *every* page of a
slab (§4.4); doing that page-by-page through the scalar codec would cost
a Python-level matrix solve per page. These helpers batch pages that
share a source-position set into whole-slab GF(2^8) kernels: each page
is a (rows, split_size) block of a 3-D stack and one coefficient matrix
is applied across every page in a single call (the native paged kernel
when compiled, the flat matmul otherwise — see :mod:`.native`).

They are exact: every output equals what the per-page codec would
produce (tested against it, byte for byte).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .galois import MUL_TABLE
from .matrix import gf_matmul
from .rs import DecodeError, ReedSolomonCode

__all__ = [
    "rebuild_transform",
    "rebuild_position",
    "encode_pages",
    "decode_pages",
    "correct_pages",
    "reencode_split_pages",
]


def _apply_paged(
    code: ReedSolomonCode,
    matrix: np.ndarray,
    stack: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``matrix @ stack[p]`` for every page ``p`` of a 3-D stack.

    ``stack`` is (pages, rows, split); pages may be strided (e.g. the
    pivot columns of a wider received stack) as long as each page's
    (rows, split) block is itself contiguous — the paged kernel takes the
    page stride explicitly, so no staging copy is made. Fallback is the
    flat transpose + matmul formulation; both run the same MUL_TABLE
    lookups, so results are byte-identical.
    """
    pages, rows, split = stack.shape
    nr = matrix.shape[0]
    if out is None:
        out = np.empty((pages, nr, split), dtype=np.uint8)
    native = code._native
    if (
        native is not None
        and pages
        and stack.strides[1:] == (split, 1)
        and out.flags.c_contiguous
    ):
        native.matrix_apply_paged(matrix, stack, out, src_stride=stack.strides[0])
        return out
    flat = stack.transpose(1, 0, 2).reshape(rows, pages * split)
    out[:] = gf_matmul(matrix, flat).reshape(nr, pages, split).transpose(1, 0, 2)
    return out


def rebuild_transform(
    code: ReedSolomonCode, source_positions: Sequence[int], target_position: int
) -> np.ndarray:
    """The 1 x k GF matrix mapping k source splits to the target split."""
    positions = list(source_positions)
    if len(positions) != code.k:
        raise DecodeError(
            f"need exactly k={code.k} source positions, got {len(positions)}"
        )
    if not 0 <= target_position < code.n:
        raise DecodeError(f"target position {target_position} out of range")
    return code.rebuild_row(positions, target_position)


def rebuild_position(
    code: ReedSolomonCode,
    sources: Dict[int, Dict[int, np.ndarray]],
    target_position: int,
    split_size: int,
) -> Dict[int, np.ndarray]:
    """Rebuild the target split of every recoverable page.

    ``sources`` maps split position -> {page_id -> split payload}. A page
    is recoverable when at least ``k`` positions hold it; pages are
    grouped by their (first k) source-position tuple so each group costs
    one matmul.

    Returns {page_id -> rebuilt split}.
    """
    groups: Dict[Tuple[int, ...], List[int]] = {}
    universe: set = set()
    for snapshot in sources.values():
        universe.update(snapshot)
    for page_id in universe:
        positions = tuple(
            sorted(
                position
                for position, snapshot in sources.items()
                if isinstance(snapshot.get(page_id), np.ndarray)
                and len(snapshot[page_id]) == split_size
            )[: code.k]
        )
        if len(positions) == code.k:
            groups.setdefault(positions, []).append(page_id)

    rebuilt: Dict[int, np.ndarray] = {}
    for positions, pages in groups.items():
        transform = rebuild_transform(code, positions, target_position)
        stacked = np.zeros((code.k, len(pages) * split_size), dtype=np.uint8)
        for row, position in enumerate(positions):
            snapshot = sources[position]
            for column, page_id in enumerate(pages):
                stacked[
                    row, column * split_size : (column + 1) * split_size
                ] = snapshot[page_id]
        out = gf_matmul(transform, stacked)[0]
        for column, page_id in enumerate(pages):
            rebuilt[page_id] = out[
                column * split_size : (column + 1) * split_size
            ].copy()
    return rebuilt


def encode_pages(
    code: ReedSolomonCode, data_splits_stack: np.ndarray
) -> np.ndarray:
    """Encode many pages at once.

    ``data_splits_stack`` has shape (pages, k, split_size); the result has
    shape (pages, n, split_size) with data splits first, parity after —
    identical to calling ``encode_page`` per page. The parity block is
    written straight into the output stack at byte offset ``k * split``
    of each page (the paged kernel takes output strides), so encoding
    costs one data copy and one kernel sweep, no transposes.
    """
    stack = np.asarray(data_splits_stack, dtype=np.uint8)
    if stack.ndim != 3 or stack.shape[1] != code.k:
        raise DecodeError(
            f"expected (pages, k={code.k}, split) stack, got {stack.shape}"
        )
    pages, _k, split_size = stack.shape
    out = np.empty((pages, code.n, split_size), dtype=np.uint8)
    out[:, : code.k] = stack
    if code.r and pages:
        native = code._native
        if native is not None and stack.strides[1:] == (split_size, 1):
            native.matrix_apply_paged(
                code._parity_matrix,
                stack,
                out[:, code.k :],
                src_stride=stack.strides[0],
                out_stride=code.n * split_size,
            )
        else:
            flat = stack.transpose(1, 0, 2).reshape(code.k, pages * split_size)
            parity_flat = gf_matmul(code.generator[code.k :], flat)
            out[:, code.k :] = parity_flat.reshape(
                code.r, pages, split_size
            ).transpose(1, 0, 2)
    return out


def decode_pages(
    code: ReedSolomonCode, indices: Sequence[int], payload_stack: np.ndarray
) -> np.ndarray:
    """Decode many pages that all arrived with the same split indices.

    ``payload_stack`` has shape (pages, k, split_size): row ``j`` of page
    ``i`` is the payload received at split index ``indices[j]``. Returns
    the (pages, k, split_size) data splits — identical to calling
    ``code.decode`` per page with those indices.
    """
    stack = np.asarray(payload_stack, dtype=np.uint8)
    index_tuple = tuple(indices)
    if stack.ndim != 3 or stack.shape[1] != len(index_tuple):
        raise DecodeError(
            f"expected (pages, {len(index_tuple)}, split) stack, got {stack.shape}"
        )
    if len(index_tuple) != code.k:
        raise DecodeError(
            f"need exactly k={code.k} indices to decode, got {len(index_tuple)}"
        )
    if index_tuple == tuple(range(code.k)):
        return stack  # all-systematic fast path
    return _apply_paged(code, code.decode_matrix(index_tuple), stack)


def correct_pages(
    code: ReedSolomonCode,
    indices: Sequence[int],
    payload_stack: np.ndarray,
    max_errors: Optional[int] = None,
    best_effort: bool = False,
) -> Tuple[np.ndarray, List[List[int]]]:
    """Correct many pages that all arrived with the same split indices.

    ``payload_stack`` has shape (pages, m, split_size) with row ``j`` of
    each page holding the payload received at ``indices[j]``. Returns
    ``(data_stack, corrupted)``: the (pages, k, split_size) corrected data
    splits and, per page, the located corrupt split indices.

    Equivalent to calling ``code.correct`` page by page in stack order —
    including raising the same :class:`DecodeError` the first failing page
    would raise — but the whole residual check runs as one paged kernel
    sweep and the two corruption shapes the §5.1 read path actually sees
    are resolved batch-wide without touching the scalar codec:

    * a single corrupt *extra* split (exactly one residual row nonzero):
      the pivot decoding is already the accepted codeword;
    * a single corrupt *pivot* split (every residual row nonzero): the
      vectorized localizer finds the unique column whose ratio structure
      explains all residual rows at once (same prefilter + full check as
      ``ReedSolomonCode._locate_pivot_error``), repairs it in place, and
      the repaired pivots ride the same batched decode as clean pages.

    Pages the batch localizer cannot settle — ambiguous residuals, deeper
    contamination, acceptance thresholds the guided path cannot reach —
    fall back to per-page ``code.correct`` in ascending page order, so
    results, localization lists, and error classification stay
    byte-identical to the per-page codec by construction.
    """
    stack = np.asarray(payload_stack, dtype=np.uint8)
    idx = [int(i) for i in indices]
    m = len(idx)
    if len(set(idx)) != m:
        raise DecodeError(f"duplicate split indices in {idx}")
    if stack.ndim != 3 or stack.shape[1] != m:
        raise DecodeError(
            f"expected (pages, {m}, split) stack, got {stack.shape}"
        )
    # Same preconditions (and messages) as ``ReedSolomonCode.correct``.
    if max_errors is None:
        max_errors = max(0, (m - code.k - 1) // 2)
    needed = code.k + 2 * max_errors + 1
    guaranteed = m >= needed
    if not guaranteed and not best_effort:
        raise DecodeError(
            f"correcting {max_errors} errors needs {needed} splits, got {m}"
        )
    if m < code.k + 1:
        raise DecodeError(
            f"localization needs at least k + 1 = {code.k + 1} splits, got {m}"
        )
    order = sorted(range(m), key=idx.__getitem__)
    if order != list(range(m)):
        stack = np.ascontiguousarray(stack[:, order])
        idx = [idx[pos] for pos in order]
    pages, _m, split_size = stack.shape
    corrupted: List[List[int]] = [[] for _ in range(pages)]
    if pages == 0:
        return np.empty((0, code.k, split_size), dtype=np.uint8), corrupted

    k = code.k
    d = m - k

    # Batched residual over every page at once: expected extras from the
    # pivot (first k) columns vs the extras actually received.
    pivot = stack[:, :k]
    entry = code._extras_entry(tuple(idx))
    residual = _apply_paged(code, entry.transform, pivot)
    np.bitwise_xor(residual, stack[:, k:], out=residual)
    row_bad = residual.any(axis=2)  # (pages, d)
    nbad = row_bad.sum(axis=1)

    def accepts(agreement: int) -> bool:
        if guaranteed and agreement >= m - max_errors:
            return True
        return best_effort and agreement >= k + 1 and 2 * agreement - m >= k

    fallback: List[int] = []
    fixed = pivot
    dirty = np.nonzero(nbad)[0]
    if len(dirty):
        if not accepts(m - 1) or d < 2:
            # No single-error candidate can reach the acceptance bar (or
            # too few extras to disambiguate) — exactly where the guided
            # path hands over to swap/scan. Per-page fallback preserves
            # its decisions (and its error classification) verbatim.
            fallback = [int(page) for page in dirty]
        else:
            # Mutable copy for repairs. Must be an unconditional copy: for
            # a single-page stack the pivot view is already contiguous
            # (size-1 leading dim), so ``ascontiguousarray`` would alias
            # the caller's buffer — and the scalar codec never mutates
            # its input splits.
            fixed = pivot.copy()
            counts = nbad[dirty]
            for page in dirty[counts == 1]:
                # One corrupt extra; the pivot decoding disagrees only
                # with it and is accepted at agreement m - 1.
                page = int(page)
                corrupted[page] = [idx[k + int(np.nonzero(row_bad[page])[0][0])]]
            all_bad = dirty[counts == d]
            if len(all_bad):
                located = _locate_pivot_errors_batch(
                    code, idx, residual, all_bad, fixed, corrupted
                )
                fallback.extend(int(page) for page in all_bad[~located])
            fallback.extend(int(page) for page in dirty[(counts != 1) & (counts != d)])
            fallback.sort()

    out = decode_pages(code, idx[:k], fixed)
    if fallback:
        # A view (systematic decode returns its input) must be copied
        # before the per-page overwrites, or they would leak into the
        # caller's stack.
        out = out.copy() if out.base is not None else np.ascontiguousarray(out)
        for page in fallback:
            received = {idx[row]: stack[page, row] for row in range(m)}
            data, bad = code.correct(
                received, max_errors=max_errors, best_effort=best_effort
            )
            out[page] = data
            corrupted[page] = bad
    return out, corrupted


def reencode_split_pages(
    code: ReedSolomonCode, data_splits_stack: np.ndarray, index: int
) -> np.ndarray:
    """Regenerate split ``index`` of many pages in one kernel pass.

    ``data_splits_stack`` has shape (pages, k, split_size); returns a
    (pages, split_size) array equal to per-page ``reencode_split``.
    """
    stack = np.asarray(data_splits_stack, dtype=np.uint8)
    if stack.ndim != 3 or stack.shape[1] != code.k:
        raise DecodeError(
            f"expected (pages, k={code.k}, split) stack, got {stack.shape}"
        )
    if not 0 <= index < code.n:
        raise DecodeError(f"split index {index} out of range 0..{code.n - 1}")
    if index < code.k:
        return stack[:, index].copy()
    pages, _k, split_size = stack.shape
    row = _apply_paged(code, code.generator[index : index + 1], stack)
    return row.reshape(pages, split_size)


def _locate_pivot_errors_batch(
    code: ReedSolomonCode,
    idx: List[int],
    residual: np.ndarray,
    pages_sel: np.ndarray,
    fixed: np.ndarray,
    corrupted: List[List[int]],
) -> np.ndarray:
    """Vectorized ``_locate_pivot_error`` over every all-rows-dirty page.

    For a corrupt pivot column ``c`` with error ``e``, residual row ``j``
    is ``T[j, c] ⊗ e`` — row ``j`` is row 0 scaled by the cached ratio
    ``T[j, c] ⊗ T[0, c]⁻¹``. The prefilter reads one byte per page (the
    first nonzero byte of row 0) and checks all columns of all pages with
    two table gathers; pages with exactly one surviving column are then
    grouped *by column* for the full vector check, repaired in ``fixed``,
    and recorded in ``corrupted``. Returns the located mask over
    ``pages_sel``; unlocated pages (no survivor, ambiguous survivors, or
    a failed full check) keep their per-page fallback.
    """
    k = code.k
    entry = code._extras_entry(tuple(idx))
    transform = entry.transform
    inv_row0, ratios = entry.ratios
    group = residual[pages_sel]  # (g, d, split)
    g = group.shape[0]
    row0 = group[:, 0]
    # First nonzero byte of row 0 (rows are all nonzero here by selection).
    p0 = np.argmax(row0 != 0, axis=1)
    arange_g = np.arange(g)
    v0 = row0[arange_g, p0]
    # predicted[i, j, c] = ratios[j, c] ⊗ v0[i]: what residual row j + 1
    # must hold at byte p0 if column c is the corrupt one.
    predicted = MUL_TABLE[ratios[None, :, :], v0[:, None, None]]
    at_p0 = np.take_along_axis(group[:, 1:], p0[:, None, None], axis=2)[:, :, 0]
    survivors = (predicted == at_p0[:, :, None]).all(axis=1)  # (g, k)
    nsurv = survivors.sum(axis=1)

    located = np.zeros(g, dtype=bool)
    single = np.nonzero(nsurv == 1)[0]
    if len(single):
        column_of = np.argmax(survivors[single], axis=1)
        for column in np.unique(column_of):
            column = int(column)
            sel = single[column_of == column]
            grp = group[sel]
            # error = T[0, c]⁻¹ ⊗ row0, then confirm every remaining row —
            # both scalings ride the paged kernel (one coefficient over
            # the whole group), not a per-element fancy gather.
            inv_mat = np.array([[inv_row0[column]]], dtype=np.uint8)
            error = _apply_paged(code, inv_mat, grp[:, :1])  # (gg, 1, split)
            coefs = np.ascontiguousarray(transform[1:, column : column + 1])
            expected = _apply_paged(code, coefs, error)
            ok = (expected == grp[:, 1:]).all(axis=(1, 2))
            good = np.nonzero(ok)[0]
            if len(good):
                repaired = pages_sel[sel[good]]
                fixed[repaired, column] ^= error[good, 0]
                bad_list = [idx[column]]
                for page in repaired:
                    corrupted[int(page)] = list(bad_list)
            located[sel] = ok
    # nsurv == 0 (no column explains the rows) and nsurv >= 2 (ambiguous
    # prefilter — the scalar path runs full checks per survivor) both go
    # to the per-page fallback, which reproduces those decisions exactly.
    return located
