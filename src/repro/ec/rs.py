"""Systematic Reed-Solomon codes over GF(2^8).

This is the algebraic heart of Hydra (§4): every 4 KB page is divided into
``k`` data splits, encoded into ``r`` additional parity splits, and any
``k`` of the ``k + r`` splits reconstruct the page. On top of plain erasure
decoding, the paper's corruption story (§4.3, §5.1) needs two more
operations, both implemented here:

* **detect** — with ``k + d`` splits, verify consistency and detect up to
  ``d`` corrupted splits;
* **correct** — with ``k + 2d + 1`` splits, locate and repair up to ``d``
  corrupted splits (majority decoding over k-subsets).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .matrix import (
    SingularMatrixError,
    gf_apply_row_plan,
    gf_mat_inverse,
    gf_matmul,
    gf_row_plan,
    systematic_generator,
)

__all__ = [
    "DecodeError",
    "CorruptionDetected",
    "ReedSolomonCode",
]


class DecodeError(ValueError):
    """Raised when reconstruction is impossible (too few splits, etc.)."""


class CorruptionDetected(DecodeError):
    """Raised when split consistency checking finds corrupted splits.

    ``suspect_indices`` lists split indices implicated by the check; with
    only ``k + d`` splits the code can prove corruption exists but cannot
    always localize it — in that case the list holds every received index.
    """

    def __init__(self, message: str, suspect_indices: Sequence[int] = ()):
        super().__init__(message)
        self.suspect_indices = list(suspect_indices)


class ReedSolomonCode:
    """A systematic RS(k, r) code with any-k-of-(k+r) reconstruction.

    Parameters
    ----------
    k:
        Number of data splits a page is divided into.
    r:
        Number of parity splits appended.

    Instances are immutable and cheap to share; decode matrices are cached
    per received-index tuple because a Resilience Manager sees the same few
    combinations over and over.
    """

    def __init__(self, k: int, r: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if r < 0:
            raise ValueError(f"r must be >= 0, got {r}")
        if k + r > 256:
            raise ValueError(f"k + r must be <= 256, got {k + r}")
        self.k = k
        self.r = r
        self.n = k + r
        self.generator = systematic_generator(k, r)
        self._decode_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        self._rebuild_cache: Dict[Tuple[Tuple[int, ...], int], np.ndarray] = {}
        self._extras_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        # Compiled row plans (see gf_row_plan) for the per-page hot paths.
        self._decode_plans: Dict[Tuple[int, ...], list] = {}
        self._extras_plans: Dict[Tuple[int, ...], list] = {}
        self._parity_plan = gf_row_plan(self.generator[self.k :]) if r else None

    # ------------------------------------------------------------------
    def encode(self, data_splits: np.ndarray) -> np.ndarray:
        """Compute the ``r`` parity splits for ``k`` data splits.

        ``data_splits`` is a (k, split_len) uint8 array. Returns an
        (r, split_len) uint8 array. With ``r == 0`` returns an empty array.
        """
        data_splits = self._check_splits(data_splits, expected_rows=self.k)
        if self.r == 0:
            return np.zeros((0, data_splits.shape[1]), dtype=np.uint8)
        return gf_apply_row_plan(self._parity_plan, list(data_splits))

    def encode_page(self, data_splits: np.ndarray) -> np.ndarray:
        """All ``k + r`` splits (data stacked above parity)."""
        parity = self.encode(data_splits)
        return np.vstack([np.asarray(data_splits, dtype=np.uint8), parity])

    # ------------------------------------------------------------------
    def decode(self, splits: Dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the ``k`` data splits from any ``k`` received splits.

        ``splits`` maps split index (0..n-1; indices >= k are parity) to its
        payload. Exactly the first ``k`` received (sorted by index) are used;
        extra entries are ignored — use :meth:`decode_verified` when the
        extras should participate in consistency checking.
        """
        received = sorted(splits.items())
        if len(received) < self.k:
            raise DecodeError(
                f"need {self.k} splits to decode, got {len(received)}"
            )
        use = received[: self.k]
        indices = tuple(index for index, _ in use)
        payload_rows = [self._check_vector(split) for _, split in use]
        if indices == tuple(range(self.k)):
            return np.stack(payload_rows)  # all-systematic fast path
        plan = self._decode_plans.get(indices)
        if plan is None:
            plan = gf_row_plan(self._decode_matrix(indices))
            self._decode_plans[indices] = plan
        return gf_apply_row_plan(plan, payload_rows)

    def reencode_split(self, data_splits: np.ndarray, index: int) -> np.ndarray:
        """Regenerate the single split ``index`` from the k data splits."""
        data_splits = self._check_splits(data_splits, expected_rows=self.k)
        if not 0 <= index < self.n:
            raise DecodeError(f"split index {index} out of range 0..{self.n - 1}")
        if index < self.k:
            return data_splits[index].copy()
        return gf_matmul(self.generator[index : index + 1], data_splits)[0]

    # ------------------------------------------------------------------
    def _reencode_rows(self, indices: Sequence[int], decoded: np.ndarray) -> np.ndarray:
        """Stacked ``reencode_split(decoded, i) for i in indices``.

        Data rows of the systematic generator are identity rows, so those
        splits are the decoded rows verbatim; only parity rows pay a (small)
        batched matmul.
        """
        expected = np.empty((len(indices), decoded.shape[1]), dtype=np.uint8)
        parity_rows = [row for row, idx in enumerate(indices) if idx >= self.k]
        if parity_rows:
            expected[parity_rows] = gf_matmul(
                self.generator[[indices[row] for row in parity_rows]], decoded
            )
        data_rows = [row for row, idx in enumerate(indices) if idx < self.k]
        if data_rows:
            expected[data_rows] = decoded[[indices[row] for row in data_rows]]
        return expected

    def _mismatching_indices(
        self, splits: Dict[int, np.ndarray], decoded: np.ndarray
    ) -> List[int]:
        """Indices of received splits inconsistent with ``decoded``.

        One batched re-encode replaces a per-split matmul + comparison;
        results are identical.
        """
        indices = sorted(splits)
        payloads = np.stack([self._check_vector(splits[i]) for i in indices])
        expected = self._reencode_rows(indices, decoded)
        bad_rows = np.nonzero((expected != payloads).any(axis=1))[0]
        return [indices[int(row)] for row in bad_rows]

    def verify(self, splits: Dict[int, np.ndarray]) -> bool:
        """True when all received splits are mutually consistent.

        Requires at least ``k + 1`` splits to say anything beyond trivially
        True; per Table 1, ``k + d`` splits detect up to ``d`` corruptions.

        The check exploits that re-encoding the first ``k`` received splits
        reproduces them exactly (the decode matrix is their inverse), so
        only the ``d`` extra splits carry information: the splits are
        consistent iff each extra equals the cached (d x k) syndrome
        transform ``G_extras @ inv(G_first_k)`` applied to the first-k
        stack. One small matmul instead of a full decode plus per-split
        re-encode; the accept/reject outcome is identical.
        """
        if len(splits) <= self.k:
            return True
        indices = sorted(splits)
        first = indices[: self.k]
        extras = indices[self.k :]
        base_rows = [self._check_vector(splits[i]) for i in first]
        key = tuple(indices)
        plan = self._extras_plans.get(key)
        if plan is None:
            plan = gf_row_plan(self._extras_transform(key))
            self._extras_plans[key] = plan
        expected = gf_apply_row_plan(plan, base_rows)
        for row, index in enumerate(extras):
            if not np.array_equal(expected[row], self._check_vector(splits[index])):
                return False
        return True

    def decode_verified(self, splits: Dict[int, np.ndarray]) -> np.ndarray:
        """Decode and verify; raises :class:`CorruptionDetected` on mismatch.

        This is the §5.1 'error detection' read: with ``k + d`` splits the
        caller learns corruption happened and must fetch more splits before
        correction is possible.
        """
        if not self.verify(splits):
            raise CorruptionDetected(
                f"inconsistent splits detected (indices {sorted(splits)})",
                suspect_indices=sorted(splits),
            )
        return self.decode(splits)

    def correct(
        self,
        splits: Dict[int, np.ndarray],
        max_errors: Optional[int] = None,
        best_effort: bool = False,
    ) -> Tuple[np.ndarray, List[int]]:
        """Locate and correct up to ``max_errors`` corrupted splits.

        Per Table 1, correcting ``d`` errors *with a guarantee* requires
        ``k + 2d + 1`` received splits. The implementation is majority
        decoding: each k-subset of the received splits proposes a decoding,
        and a proposal is accepted when it is consistent with at least
        ``len(splits) - max_errors`` received splits — a threshold only the
        true codeword can reach when at most ``max_errors`` splits are
        corrupted.

        With ``best_effort=True`` the split-count precondition is relaxed:
        the method returns the *unique* candidate codeword with maximal
        agreement, provided that agreement covers at least ``k + 1``
        splits. This localizes (say) one corruption from ``k + 2`` splits
        with overwhelming probability for random corruption, but is not an
        information-theoretic guarantee — exactly the distinction §5.1
        draws.

        Returns ``(data_splits, corrupted_indices)``.

        Complexity is C(m, k) decodings in the worst case, which is fine
        for the paper's operating points (e.g. m=11, k=8, d=1 -> 165
        subsets); the common no-corruption case returns after one decode.
        """
        m = len(splits)
        if max_errors is None:
            max_errors = max(0, (m - self.k - 1) // 2)
        needed = self.k + 2 * max_errors + 1
        guaranteed = m >= needed
        if not guaranteed and not best_effort:
            raise DecodeError(
                f"correcting {max_errors} errors needs {needed} splits, got {m}"
            )
        if m < self.k + 1:
            raise DecodeError(
                f"localization needs at least k + 1 = {self.k + 1} splits, got {m}"
            )
        items = sorted(splits.items())
        payloads = {idx: self._check_vector(p) for idx, p in items}
        agreement_threshold = m - max_errors if guaranteed else m
        idx_list = [idx for idx, _ in items]
        stacked = np.stack([payloads[idx] for idx in idx_list])

        # Distinct candidate codewords, keyed by content, with the set of
        # splits each disagrees with.
        candidates: Dict[bytes, Tuple[np.ndarray, List[int]]] = {}
        for subset in combinations(payloads.keys(), self.k):
            try:
                candidate = self.decode({idx: payloads[idx] for idx in subset})
            except SingularMatrixError:  # pragma: no cover - Cauchy prevents this
                continue
            key = candidate.tobytes()
            if key in candidates:
                continue
            expected = self._reencode_rows(idx_list, candidate)
            bad_rows = np.nonzero((expected != stacked).any(axis=1))[0]
            corrupted = [idx_list[int(row)] for row in bad_rows]
            if guaranteed and m - len(corrupted) >= agreement_threshold:
                return candidate, corrupted
            candidates[key] = (candidate, corrupted)

        if best_effort and candidates:
            ranked = sorted(candidates.values(), key=lambda cc: len(cc[1]))
            best, best_bad = ranked[0]
            best_agreement = m - len(best_bad)
            unique = len(ranked) == 1 or len(ranked[1][1]) > len(best_bad)
            if unique and best_agreement >= self.k + 1:
                return best, best_bad
        raise DecodeError(
            f"more than {max_errors} corrupted splits; correction impossible"
        )

    # ------------------------------------------------------------------
    @property
    def storage_overhead(self) -> float:
        """Memory overhead factor 1 + r/k (Table 1, failure row)."""
        return 1.0 + self.r / self.k

    def __repr__(self) -> str:
        return f"ReedSolomonCode(k={self.k}, r={self.r})"

    # ------------------------------------------------------------------
    def decode_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """The cached k x k inverse of generator rows ``indices``.

        Multiplying this by the stacked payloads received at those indices
        reconstructs the k data splits; the batch codec uses it to decode
        many pages that arrived with the same index combination in one
        matmul.
        """
        return self._decode_matrix(tuple(indices))

    def rebuild_row(
        self, source_positions: Sequence[int], target_position: int
    ) -> np.ndarray:
        """Cached 1 x k transform regenerating ``target_position``.

        ``rebuild_row(S, t) @ stacked_payloads(S)`` equals split ``t``;
        this is the slab-regeneration kernel (§4.2). Cached per
        (sources, target) pair because the Resource Monitor rebuilds a
        whole slab's pages through the same few combinations.
        """
        key = (tuple(source_positions), target_position)
        cached = self._rebuild_cache.get(key)
        if cached is None:
            if len(key[0]) != self.k:
                raise DecodeError(
                    f"rebuild needs exactly {self.k} source positions, got {len(key[0])}"
                )
            if not 0 <= target_position < self.n:
                raise DecodeError(
                    f"target position {target_position} out of range 0..{self.n - 1}"
                )
            cached = gf_matmul(
                self.generator[target_position : target_position + 1],
                self._decode_matrix(key[0]),
            )
            self._rebuild_cache[key] = cached
        return cached

    # -- internals -------------------------------------------------------
    def _extras_transform(self, indices: Tuple[int, ...]) -> np.ndarray:
        """Cached (d x k) map from the first-k received splits to the
        expected values of the remaining ``d`` received splits."""
        cached = self._extras_cache.get(indices)
        if cached is None:
            first = list(indices[: self.k])
            extras = list(indices[self.k :])
            cached = gf_matmul(
                self.generator[extras], self._decode_matrix(tuple(first))
            )
            self._extras_cache[indices] = cached
        return cached

    def _decode_matrix(self, indices: Tuple[int, ...]) -> np.ndarray:
        cached = self._decode_cache.get(indices)
        if cached is None:
            rows = self.generator[list(indices)]
            cached = gf_mat_inverse(rows)
            self._decode_cache[indices] = cached
        return cached

    def _check_splits(self, splits: np.ndarray, expected_rows: int) -> np.ndarray:
        splits = np.asarray(splits, dtype=np.uint8)
        if splits.ndim != 2:
            raise DecodeError(f"splits must be 2-D (rows, bytes), got {splits.shape}")
        if splits.shape[0] != expected_rows:
            raise DecodeError(
                f"expected {expected_rows} splits, got {splits.shape[0]}"
            )
        return splits

    @staticmethod
    def _check_vector(split: np.ndarray) -> np.ndarray:
        if type(split) is np.ndarray and split.dtype == np.uint8:
            if split.ndim != 1:
                raise DecodeError(f"each split must be 1-D, got shape {split.shape}")
            return split
        split = np.asarray(split, dtype=np.uint8)
        if split.ndim != 1:
            raise DecodeError(f"each split must be 1-D, got shape {split.shape}")
        return split
