"""Systematic Reed-Solomon codes over GF(2^8).

This is the algebraic heart of Hydra (§4): every 4 KB page is divided into
``k`` data splits, encoded into ``r`` additional parity splits, and any
``k`` of the ``k + r`` splits reconstruct the page. On top of plain erasure
decoding, the paper's corruption story (§4.3, §5.1) needs two more
operations, both implemented here:

* **detect** — with ``k + d`` splits, verify consistency and detect up to
  ``d`` corrupted splits;
* **correct** — with ``k + 2d + 1`` splits, locate and repair up to ``d``
  corrupted splits (majority decoding over k-subsets).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .galois import MUL_TABLE, gf_inv
from .matrix import (
    SingularMatrixError,
    gf_apply_row_plan_into,
    gf_mat_inverse,
    gf_matmul,
    gf_matmul_slab,
    gf_row_plan,
    systematic_generator,
)
from .native import load_native
from .plancache import PlanCache

# numpy interns builtin dtypes, so identity is an exact (and much cheaper)
# stand-in for ``dtype == np.uint8`` on the per-split validation path.
_UINT8 = np.dtype(np.uint8)

# Process-wide plan caches for default-capacity codes, keyed by (k, r).
# Compiled plans are deterministic in (k, r, pattern), so sharing them
# across codec instances only changes who pays the compile.
_SHARED_PLAN_CACHES: Dict[Tuple[int, int], PlanCache] = {}

__all__ = [
    "DecodeError",
    "CorruptionDetected",
    "ReedSolomonCode",
]


class _DecodePlan:
    """Precompiled decode plan for one received-index tuple: the k x k
    inverse matrix (C-contiguous, ready for the native kernel) plus the
    lazily compiled row plan the numpy fallback applies."""

    __slots__ = ("matrix", "matrix_ptr", "_plan")

    def __init__(self, matrix: np.ndarray):
        self.matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        # Raw address for the native kernel, resolved once per plan: the
        # plan keeps the matrix alive, so the pointer stays valid.
        self.matrix_ptr = self.matrix.ctypes.data
        self._plan = None

    @property
    def plan(self) -> list:
        plan = self._plan
        if plan is None:
            plan = self._plan = gf_row_plan(self.matrix)
        return plan


class _ExtrasPlan:
    """Precompiled consistency plan for one received-index tuple: the
    (d x k) extras transform, its fallback row plan, and the residual
    ratio tables the pivot-error localizer reads — one LRU entry instead
    of three parallel dicts keyed by the same tuple."""

    __slots__ = ("transform", "transform_ptr", "_plan", "_ratios")

    def __init__(self, transform: np.ndarray):
        self.transform = np.ascontiguousarray(transform, dtype=np.uint8)
        self.transform_ptr = self.transform.ctypes.data
        self._plan = None
        self._ratios = None

    @property
    def plan(self) -> list:
        plan = self._plan
        if plan is None:
            plan = self._plan = gf_row_plan(self.transform)
        return plan

    @property
    def ratios(self):
        """(inv_row0, ratios) with ratios[j-1, c] = T[j, c] ⊗ T[0, c]⁻¹."""
        cached = self._ratios
        if cached is None:
            inv_row0 = np.array(
                [gf_inv(int(t)) for t in self.transform[0]], dtype=np.uint8
            )
            cached = self._ratios = (inv_row0, MUL_TABLE[self.transform[1:], inv_row0])
        return cached


class DecodeError(ValueError):
    """Raised when reconstruction is impossible (too few splits, etc.).

    ``suspect_indices`` lists the split indices implicated by whatever
    evidence the failing operation gathered before giving up — e.g. the
    disagreement sets of tied correction candidates. Empty when the
    failure carries no localization information (too few splits, more
    corruption than the code can pin down).
    """

    def __init__(self, message: str, suspect_indices: Sequence[int] = ()):
        super().__init__(message)
        self.suspect_indices = list(suspect_indices)


class CorruptionDetected(DecodeError):
    """Raised when split consistency checking finds corrupted splits.

    With only ``k + d`` splits the code can prove corruption exists but
    cannot always localize it — in that case ``suspect_indices`` holds
    every received index.
    """


class ReedSolomonCode:
    """A systematic RS(k, r) code with any-k-of-(k+r) reconstruction.

    Parameters
    ----------
    k:
        Number of data splits a page is divided into.
    r:
        Number of parity splits appended.

    Instances are immutable and cheap to share; decode plans are cached
    per received-index tuple (bounded LRU — see :class:`PlanCache`)
    because a Resilience Manager sees the same few combinations over and
    over, while erasure-pattern churn in long chaos soaks must not grow
    the cache without bound.
    """

    def __init__(self, k: int, r: int, plan_cache_capacity: Optional[int] = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if r < 0:
            raise ValueError(f"r must be >= 0, got {r}")
        if k + r > 256:
            raise ValueError(f"k + r must be <= 256, got {k + r}")
        self.k = k
        self.r = r
        self.n = k + r
        self.generator = systematic_generator(k, r)
        # One bounded LRU replaces the former unbounded per-kind dicts
        # (decode matrices, extras transforms, residual ratios, rebuild
        # rows); entries are namespaced by kind within the shared budget.
        # Plans are pure functions of (k, r, pattern), so default-capacity
        # codes share one process-wide cache per (k, r): a 12-machine
        # cluster compiles each decode plan once, not once per RM. An
        # explicit capacity opts out into a private cache.
        if plan_cache_capacity is None:
            cache = _SHARED_PLAN_CACHES.get((k, r))
            if cache is None:
                cache = _SHARED_PLAN_CACHES[(k, r)] = PlanCache()
            self.plan_cache = cache
        else:
            self.plan_cache = PlanCache(plan_cache_capacity)
        self._parity_matrix = np.ascontiguousarray(self.generator[self.k :])
        self._parity_plan = gf_row_plan(self.generator[self.k :]) if r else None
        # The native SIMD kernel (or None → numpy fallback); resolved once
        # per codec, immutable for the process lifetime.
        self._native = load_native()
        # One reusable gather buffer for the in-place kernels; reallocated
        # only when the split length changes (it never does in steady state).
        self._scratch: Optional[np.ndarray] = None

    def _scratch_for(self, length: int) -> np.ndarray:
        scratch = self._scratch
        if scratch is None or scratch.shape[0] != length:
            scratch = np.empty(length, dtype=np.uint8)
            self._scratch = scratch
        return scratch

    # ------------------------------------------------------------------
    def encode(self, data_splits: np.ndarray) -> np.ndarray:
        """Compute the ``r`` parity splits for ``k`` data splits.

        ``data_splits`` is a (k, split_len) uint8 array. Returns an
        (r, split_len) uint8 array. With ``r == 0`` returns an empty array.
        """
        data_splits = self._check_splits(data_splits, expected_rows=self.k)
        if self.r == 0:
            return np.zeros((0, data_splits.shape[1]), dtype=np.uint8)
        length = data_splits.shape[1]
        out = np.empty((self.r, length), dtype=np.uint8)
        if self._native is None:
            return gf_apply_row_plan_into(
                self._parity_plan, list(data_splits), out, self._scratch_for(length)
            )
        return gf_matmul_slab(self._parity_matrix, data_splits, out=out)

    def encode_page(self, data_splits: np.ndarray) -> np.ndarray:
        """All ``k + r`` splits (data stacked above parity)."""
        data_splits = self._check_splits(data_splits, expected_rows=self.k)
        length = data_splits.shape[1]
        out = np.empty((self.n, length), dtype=np.uint8)
        out[: self.k] = data_splits
        if self.r:
            if self._native is None:
                gf_apply_row_plan_into(
                    self._parity_plan,
                    list(data_splits),
                    out[self.k :],
                    self._scratch_for(length),
                )
            else:
                gf_matmul_slab(self._parity_matrix, data_splits, out=out[self.k :])
        return out

    # ------------------------------------------------------------------
    def decode(self, splits: Dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the ``k`` data splits from any ``k`` received splits.

        ``splits`` maps split index (0..n-1; indices >= k are parity) to its
        payload. Exactly the first ``k`` received (sorted by index) are used;
        extra entries are ignored — use :meth:`decode_verified` when the
        extras should participate in consistency checking.
        """
        received = sorted(splits.items())
        if len(received) < self.k:
            raise DecodeError(
                f"need {self.k} splits to decode, got {len(received)}"
            )
        use = received[: self.k]
        indices = tuple(index for index, _ in use)
        payload_rows = [self._check_vector(split) for _, split in use]
        return self._decode_rows(indices, payload_rows)

    def _decode_rows(
        self, indices: Tuple[int, ...], payload_rows: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Decode from exactly ``k`` already-validated rows at ``indices``."""
        if indices == tuple(range(self.k)):
            return np.stack(payload_rows)  # all-systematic fast path
        entry = self._decode_plan(indices)
        native = self._native
        if native is None:
            length = payload_rows[0].shape[0]
            out = np.empty((self.k, length), dtype=np.uint8)
            return gf_apply_row_plan_into(
                entry.plan, payload_rows, out, self._scratch_for(length)
            )
        return native.matrix_apply_rows_alloc(
            entry.matrix, payload_rows, coef_ptr=entry.matrix_ptr
        )

    def reencode_split(self, data_splits: np.ndarray, index: int) -> np.ndarray:
        """Regenerate the single split ``index`` from the k data splits."""
        data_splits = self._check_splits(data_splits, expected_rows=self.k)
        if not 0 <= index < self.n:
            raise DecodeError(f"split index {index} out of range 0..{self.n - 1}")
        if index < self.k:
            return data_splits[index].copy()
        return gf_matmul(self.generator[index : index + 1], data_splits)[0]

    # ------------------------------------------------------------------
    def _reencode_rows(self, indices: Sequence[int], decoded: np.ndarray) -> np.ndarray:
        """Stacked ``reencode_split(decoded, i) for i in indices``.

        Data rows of the systematic generator are identity rows, so those
        splits are the decoded rows verbatim; only parity rows pay a (small)
        batched matmul.
        """
        expected = np.empty((len(indices), decoded.shape[1]), dtype=np.uint8)
        parity_rows = [row for row, idx in enumerate(indices) if idx >= self.k]
        if parity_rows:
            expected[parity_rows] = gf_matmul(
                self.generator[[indices[row] for row in parity_rows]], decoded
            )
        data_rows = [row for row, idx in enumerate(indices) if idx < self.k]
        if data_rows:
            expected[data_rows] = decoded[[indices[row] for row in data_rows]]
        return expected

    def _mismatching_indices(
        self, splits: Dict[int, np.ndarray], decoded: np.ndarray
    ) -> List[int]:
        """Indices of received splits inconsistent with ``decoded``.

        One batched re-encode replaces a per-split matmul + comparison;
        results are identical.
        """
        indices = sorted(splits)
        payloads = np.stack([self._check_vector(splits[i]) for i in indices])
        expected = self._reencode_rows(indices, decoded)
        bad_rows = np.nonzero((expected != payloads).any(axis=1))[0]
        return [indices[int(row)] for row in bad_rows]

    def verify(self, splits: Dict[int, np.ndarray]) -> bool:
        """True when all received splits are mutually consistent.

        Requires at least ``k + 1`` splits to say anything beyond trivially
        True; per Table 1, ``k + d`` splits detect up to ``d`` corruptions.

        The check exploits that re-encoding the first ``k`` received splits
        reproduces them exactly (the decode matrix is their inverse), so
        only the ``d`` extra splits carry information: the splits are
        consistent iff each extra equals the cached (d x k) syndrome
        transform ``G_extras @ inv(G_first_k)`` applied to the first-k
        stack. One small matmul instead of a full decode plus per-split
        re-encode; the accept/reject outcome is identical.
        """
        if len(splits) <= self.k:
            return True
        indices = sorted(splits)
        first = indices[: self.k]
        extras = indices[self.k :]
        base_rows = [self._check_vector(splits[i]) for i in first]
        entry = self._extras_entry(tuple(indices))
        native = self._native
        if native is None:
            length = base_rows[0].shape[0]
            expected = np.empty((len(extras), length), dtype=np.uint8)
            gf_apply_row_plan_into(
                entry.plan, base_rows, expected, self._scratch_for(length)
            )
        else:
            # Stage-view output: consumed before any further native call.
            expected = native.matrix_apply_rows_alloc(
                entry.transform, base_rows, coef_ptr=entry.transform_ptr, copy=False
            )
        for row, index in enumerate(extras):
            if not np.array_equal(expected[row], self._check_vector(splits[index])):
                return False
        return True

    def decode_verified(self, splits: Dict[int, np.ndarray]) -> np.ndarray:
        """Decode and verify; raises :class:`CorruptionDetected` on mismatch.

        This is the §5.1 'error detection' read: with ``k + d`` splits the
        caller learns corruption happened and must fetch more splits before
        correction is possible.
        """
        if not self.verify(splits):
            raise CorruptionDetected(
                f"inconsistent splits detected (indices {sorted(splits)})",
                suspect_indices=sorted(splits),
            )
        return self.decode(splits)

    def correct(
        self,
        splits: Dict[int, np.ndarray],
        max_errors: Optional[int] = None,
        best_effort: bool = False,
    ) -> Tuple[np.ndarray, List[int]]:
        """Locate and correct up to ``max_errors`` corrupted splits.

        Per Table 1, correcting ``d`` errors *with a guarantee* requires
        ``k + 2d + 1`` received splits. The contract is majority decoding:
        a candidate codeword is accepted when it is consistent with at
        least ``len(splits) - max_errors`` received splits — a threshold
        only the true codeword can reach when at most ``max_errors``
        splits are corrupted.

        With ``best_effort=True`` the split-count precondition is relaxed:
        the method returns the *unique* candidate codeword with maximal
        agreement, provided that agreement covers at least ``k + 1``
        splits. This localizes (say) one corruption from ``k + 2`` splits
        with overwhelming probability for random corruption, but is not an
        information-theoretic guarantee — exactly the distinction §5.1
        draws.

        Returns ``(data_splits, corrupted_indices)``.

        The implementation is residual-guided: decode once from the pivot
        (first ``k`` received) subset, re-encode through the cached extras
        transform, and read the error location out of which residual rows
        disagree — O(d) decodings for the corruption patterns the §5.1
        read path actually sees, instead of the C(m, k) subset scan. The
        guided path only accepts a candidate whose agreement provably
        makes it the codeword the exhaustive scan would return (see
        :meth:`_correct_guided`); every other case — ambiguous residuals,
        deep pivot contamination, the best-effort tail — falls back to
        :meth:`correct_reference`, so results, errors, and localization
        lists are byte-identical to the scan by construction.
        """
        m = len(splits)
        if max_errors is None:
            max_errors = max(0, (m - self.k - 1) // 2)
        needed = self.k + 2 * max_errors + 1
        guaranteed = m >= needed
        if not guaranteed and not best_effort:
            raise DecodeError(
                f"correcting {max_errors} errors needs {needed} splits, got {m}"
            )
        if m < self.k + 1:
            raise DecodeError(
                f"localization needs at least k + 1 = {self.k + 1} splits, got {m}"
            )
        items = sorted(splits.items())
        idx_list = [idx for idx, _ in items]
        payload_rows = [self._check_vector(p) for _, p in items]
        result = self._correct_guided(
            idx_list, payload_rows, max_errors, guaranteed, best_effort
        )
        if result is not None:
            return result
        return self._correct_scan(
            idx_list, payload_rows, max_errors, guaranteed, best_effort
        )

    def correct_reference(
        self,
        splits: Dict[int, np.ndarray],
        max_errors: Optional[int] = None,
        best_effort: bool = False,
    ) -> Tuple[np.ndarray, List[int]]:
        """The exhaustive C(m, k) majority decoder :meth:`correct` replaces.

        Same contract, same results, same errors — this is both the
        fallback for inputs the guided path cannot settle and the oracle
        the property tests pin the fast path against byte for byte.
        """
        m = len(splits)
        if max_errors is None:
            max_errors = max(0, (m - self.k - 1) // 2)
        needed = self.k + 2 * max_errors + 1
        guaranteed = m >= needed
        if not guaranteed and not best_effort:
            raise DecodeError(
                f"correcting {max_errors} errors needs {needed} splits, got {m}"
            )
        if m < self.k + 1:
            raise DecodeError(
                f"localization needs at least k + 1 = {self.k + 1} splits, got {m}"
            )
        items = sorted(splits.items())
        idx_list = [idx for idx, _ in items]
        payload_rows = [self._check_vector(p) for _, p in items]
        return self._correct_scan(
            idx_list, payload_rows, max_errors, guaranteed, best_effort
        )

    def _correct_guided(
        self,
        idx_list: List[int],
        payload_rows: List[np.ndarray],
        max_errors: int,
        guaranteed: bool,
        best_effort: bool,
    ) -> Optional[Tuple[np.ndarray, List[int]]]:
        """Residual-guided localization; ``None`` defers to the scan.

        Decode the pivot (first ``k`` received) subset and compare the
        remaining rows against the cached extras transform of the pivot.
        The residual pattern localizes the error without searching:

        * all-zero residual — the received set is consistent; the pivot
          decoding agrees with every split.
        * exactly one nonzero residual row — that extra split alone is
          corrupt (the pivot decoding agrees with everything else).
        * every residual row nonzero — consistent with one corrupt pivot
          column ``c``: then residual row ``j`` must equal
          ``T[j, c] ⊗ e`` for a single error vector ``e``, checkable per
          column with a scalar prefilter at the first nonzero byte. (Every
          ``T[j, c]`` is nonzero — a zero entry would make generator rows
          ``pivot∖{c} ∪ {extra_j}`` dependent, contradicting the Cauchy
          MDS property — so a real single-pivot error marks *all* rows.)
        * anything else — at least two corruptions; try swapping one pivot
          row for each of the first ``max_errors`` non-pivot rows (if one
          pivot row is corrupt, at most ``max_errors - 1`` extras are, so
          one of those replacements is clean) before giving up.

        A candidate with agreement ``a`` (out of ``m``) is accepted only
        when it is provably the scan's answer: in guaranteed mode when
        ``a >= m - max_errors`` (two codewords at that threshold would
        share ``m - 2·max_errors >= k + 1`` splits and be equal), and in
        best-effort mode when ``a >= k + 1`` and ``2a - m >= k`` (any
        rival with agreement ``>= a`` shares ``>= 2a - m >= k`` splits
        with the candidate, hence equals it — so it is the unique
        maximum the reference ranking returns). Anything weaker returns
        ``None`` and the exhaustive scan decides, including raising the
        classified errors.
        """
        k = self.k
        m = len(idx_list)
        extras_count = m - k

        def accepts(agreement: int) -> bool:
            if guaranteed and agreement >= m - max_errors:
                return True
            return (
                best_effort
                and agreement >= k + 1
                and 2 * agreement - m >= k
            )

        pivot = tuple(idx_list[:k])
        pivot_rows = payload_rows[:k]
        length = payload_rows[0].shape[0]
        residual = np.empty((extras_count, length), dtype=np.uint8)
        entry = self._extras_entry(tuple(idx_list))
        native = self._native
        if native is None:
            gf_apply_row_plan_into(
                entry.plan, pivot_rows, residual, self._scratch_for(length)
            )
        else:
            native.matrix_apply_rows(
                entry.transform, pivot_rows, residual, coef_ptr=entry.transform_ptr
            )
        for row in range(extras_count):
            np.bitwise_xor(residual[row], payload_rows[k + row], out=residual[row])
        bad_rows = np.nonzero(residual.any(axis=1))[0]

        if len(bad_rows) == 0:
            # Consistent: the pivot decoding agrees with all m splits, the
            # strongest possible majority in either mode.
            return self._decode_rows(pivot, pivot_rows), []

        if not accepts(m - 1):
            # No single-error candidate can be accepted (agreement is at
            # most m - 1 once any residual row is nonzero), and multi-error
            # candidates are weaker still.
            return None

        if len(bad_rows) == 1 and extras_count >= 2:
            # One corrupt extra; the pivot decoding disagrees only with it.
            return (
                self._decode_rows(pivot, pivot_rows),
                [idx_list[k + int(bad_rows[0])]],
            )

        if len(bad_rows) == extras_count and extras_count >= 2:
            located = self._locate_pivot_error(idx_list, residual)
            if located is not None:
                column, error = located
                rows = list(pivot_rows)
                rows[column] = rows[column] ^ error
                return self._decode_rows(pivot, rows), [pivot[column]]

        if max_errors >= 2:
            return self._correct_by_swap(
                idx_list, payload_rows, max_errors, accepts
            )
        return None

    def _locate_pivot_error(
        self, idx_list: List[int], residual: np.ndarray
    ) -> Optional[Tuple[int, np.ndarray]]:
        """Find the unique (column, error) explaining an all-rows residual.

        For a corrupt pivot column ``c`` with error ``e``, residual row
        ``j`` is ``T[j, c] ⊗ e``, i.e. row ``j`` is row 0 scaled by the
        cached ratio ``T[j, c] ⊗ T[0, c]⁻¹``. Prefilter: at the first
        nonzero byte of row 0, one vectorized gather checks which columns
        predict every other row's byte; survivors (generically exactly
        one) get the full vector check. Returns ``None`` when no column
        explains the rows (>= 2 corruptions) or more than one does
        (ambiguous — impossible for m >= k + 2, but guarded anyway).
        """
        entry = self._extras_entry(tuple(idx_list))
        transform = entry.transform
        inv_row0, ratios = entry.ratios
        extras_count = residual.shape[0]
        row0 = residual[0]
        p0 = int(np.flatnonzero(row0)[0])
        predicted = MUL_TABLE[ratios, row0[p0]]
        survivors = np.nonzero(
            (predicted == residual[1:, p0, None]).all(axis=0)
        )[0]
        located = None
        for column in survivors:
            column = int(column)
            error = MUL_TABLE[inv_row0[column]].take(row0)
            if all(
                np.array_equal(
                    MUL_TABLE[int(transform[j, column])].take(error), residual[j]
                )
                for j in range(1, extras_count)
            ):
                if located is not None:  # pragma: no cover - see docstring
                    return None
                located = (column, error)
        return located

    def _correct_by_swap(
        self,
        idx_list: List[int],
        payload_rows: List[np.ndarray],
        max_errors: int,
        accepts,
    ) -> Optional[Tuple[np.ndarray, List[int]]]:
        """Try pivot subsets with one row swapped for an early extra.

        Covers multi-error patterns with exactly one corruption inside the
        pivot: at most ``max_errors - 1`` extras are then corrupt, so among
        the first ``max_errors`` non-pivot rows at least one replacement is
        clean. Deeper contamination returns ``None`` (scan fallback).
        """
        k = self.k
        m = len(idx_list)
        stacked = np.stack(payload_rows)
        by_index = dict(zip(idx_list, payload_rows))
        for replacement in idx_list[k : k + max_errors]:
            for drop in range(k):
                subset = tuple(idx_list[:drop] + idx_list[drop + 1 : k] + [replacement])
                try:
                    candidate = self._decode_rows(
                        subset, [by_index[i] for i in subset]
                    )
                except SingularMatrixError:  # pragma: no cover - Cauchy prevents this
                    continue
                expected = self._reencode_rows(idx_list, candidate)
                bad_rows = np.nonzero((expected != stacked).any(axis=1))[0]
                if accepts(m - len(bad_rows)):
                    return candidate, [idx_list[int(row)] for row in bad_rows]
        return None

    def _correct_scan(
        self,
        idx_list: List[int],
        payload_rows: List[np.ndarray],
        max_errors: int,
        guaranteed: bool,
        best_effort: bool,
    ) -> Tuple[np.ndarray, List[int]]:
        """Exhaustive majority decode over every k-subset (the fallback)."""
        m = len(idx_list)
        agreement_threshold = m - max_errors if guaranteed else m
        by_index = dict(zip(idx_list, payload_rows))
        stacked = np.stack(payload_rows)

        # Distinct candidate codewords, keyed by content, with the set of
        # splits each disagrees with.
        candidates: Dict[bytes, Tuple[np.ndarray, List[int]]] = {}
        for subset in combinations(idx_list, self.k):
            try:
                candidate = self._decode_rows(subset, [by_index[i] for i in subset])
            except SingularMatrixError:  # pragma: no cover - Cauchy prevents this
                continue
            key = candidate.tobytes()
            if key in candidates:
                continue
            expected = self._reencode_rows(idx_list, candidate)
            bad_rows = np.nonzero((expected != stacked).any(axis=1))[0]
            corrupted = [idx_list[int(row)] for row in bad_rows]
            if guaranteed and m - len(corrupted) >= agreement_threshold:
                return candidate, corrupted
            candidates[key] = (candidate, corrupted)

        if best_effort and candidates:
            ranked = sorted(candidates.values(), key=lambda cc: len(cc[1]))
            best, best_bad = ranked[0]
            best_agreement = m - len(best_bad)
            unique = len(ranked) == 1 or len(ranked[1][1]) > len(best_bad)
            if unique and best_agreement >= self.k + 1:
                return best, best_bad
            if not unique:
                tied = [bad for _, bad in ranked if len(bad) == len(best_bad)]
                raise DecodeError(
                    f"ambiguous correction: {len(tied)} candidate codewords tie "
                    f"at {best_agreement} of {m} agreeing splits",
                    suspect_indices=sorted({i for bad in tied for i in bad}),
                )
            raise DecodeError(
                f"insufficient agreement: best candidate matches only "
                f"{best_agreement} of {m} splits (localization needs "
                f"k + 1 = {self.k + 1})",
                suspect_indices=best_bad,
            )
        raise DecodeError(
            f"more than {max_errors} corrupted splits among {m} received; "
            "correction impossible"
        )

    # ------------------------------------------------------------------
    @property
    def storage_overhead(self) -> float:
        """Memory overhead factor 1 + r/k (Table 1, failure row)."""
        return 1.0 + self.r / self.k

    def __repr__(self) -> str:
        return f"ReedSolomonCode(k={self.k}, r={self.r})"

    # ------------------------------------------------------------------
    def decode_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """The cached k x k inverse of generator rows ``indices``.

        Multiplying this by the stacked payloads received at those indices
        reconstructs the k data splits; the batch codec uses it to decode
        many pages that arrived with the same index combination in one
        matmul.
        """
        return self._decode_matrix(tuple(indices))

    def rebuild_row(
        self, source_positions: Sequence[int], target_position: int
    ) -> np.ndarray:
        """Cached 1 x k transform regenerating ``target_position``.

        ``rebuild_row(S, t) @ stacked_payloads(S)`` equals split ``t``;
        this is the slab-regeneration kernel (§4.2). Cached per
        (sources, target) pair because the Resource Monitor rebuilds a
        whole slab's pages through the same few combinations.
        """
        key = ("rebuild", tuple(source_positions), target_position)
        cached = self.plan_cache.get(key)
        if cached is None:
            if len(key[1]) != self.k:
                raise DecodeError(
                    f"rebuild needs exactly {self.k} source positions, got {len(key[1])}"
                )
            if not 0 <= target_position < self.n:
                raise DecodeError(
                    f"target position {target_position} out of range 0..{self.n - 1}"
                )
            cached = self.plan_cache.put(
                key,
                gf_matmul(
                    self.generator[target_position : target_position + 1],
                    self._decode_matrix(key[1]),
                ),
            )
        return cached

    # -- internals -------------------------------------------------------
    def _extras_entry(self, indices: Tuple[int, ...]) -> _ExtrasPlan:
        """Cached consistency plan: the (d x k) map from the first-k
        received splits to the expected remaining ``d``, plus its
        compiled row plan and residual-ratio tables."""
        key = ("extras", indices)
        entry = self.plan_cache.get(key)
        if entry is None:
            first = list(indices[: self.k])
            extras = list(indices[self.k :])
            transform = gf_matmul(
                self.generator[extras], self._decode_matrix(tuple(first))
            )
            entry = self.plan_cache.put(key, _ExtrasPlan(transform))
        return entry

    def _extras_transform(self, indices: Tuple[int, ...]) -> np.ndarray:
        return self._extras_entry(indices).transform

    def _decode_plan(self, indices: Tuple[int, ...]) -> _DecodePlan:
        key = ("decode", indices)
        entry = self.plan_cache.get(key)
        if entry is None:
            rows = self.generator[list(indices)]
            entry = self.plan_cache.put(key, _DecodePlan(gf_mat_inverse(rows)))
        return entry

    def _decode_matrix(self, indices: Tuple[int, ...]) -> np.ndarray:
        return self._decode_plan(indices).matrix

    def _check_splits(self, splits: np.ndarray, expected_rows: int) -> np.ndarray:
        splits = np.asarray(splits, dtype=np.uint8)
        if splits.ndim != 2:
            raise DecodeError(f"splits must be 2-D (rows, bytes), got {splits.shape}")
        if splits.shape[0] != expected_rows:
            raise DecodeError(
                f"expected {expected_rows} splits, got {splits.shape[0]}"
            )
        return splits

    @staticmethod
    def _check_vector(split: np.ndarray) -> np.ndarray:
        if type(split) is np.ndarray and split.dtype is _UINT8:
            if split.ndim != 1:
                raise DecodeError(f"each split must be 1-D, got shape {split.shape}")
            return split
        split = np.asarray(split, dtype=np.uint8)
        if split.ndim != 1:
            raise DecodeError(f"each split must be 1-D, got shape {split.shape}")
        return split
