"""Erasure coding: GF(2^8) Reed-Solomon codes and the per-page codec."""

from .galois import gf_add, gf_div, gf_inv, gf_mul, gf_mul_slice, gf_pow, gf_sub
from .matrix import (
    SingularMatrixError,
    cauchy_parity_matrix,
    gf_mat_inverse,
    gf_matmul,
    systematic_generator,
)
from .pagecodec import PAGE_SIZE, PageCodec
from .rs import CorruptionDetected, DecodeError, ReedSolomonCode
from .vectorized import (
    correct_pages,
    decode_pages,
    encode_pages,
    rebuild_position,
    rebuild_transform,
    reencode_split_pages,
)

__all__ = [
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_mul_slice",
    "SingularMatrixError",
    "gf_matmul",
    "gf_mat_inverse",
    "cauchy_parity_matrix",
    "systematic_generator",
    "PAGE_SIZE",
    "PageCodec",
    "CorruptionDetected",
    "DecodeError",
    "ReedSolomonCode",
    "encode_pages",
    "decode_pages",
    "correct_pages",
    "reencode_split_pages",
    "rebuild_position",
    "rebuild_transform",
]
