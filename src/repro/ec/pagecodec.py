"""Page-level codec: 4 KB pages <-> (k + r) erasure-coded splits.

Hydra codes each page *individually* (§4) rather than batching pages, so
the codec here is purely per-page: split a page into ``k`` equal shards
(zero-padded when ``k`` does not divide the page size), encode ``r``
parities, and reassemble from any ``k`` shards.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .rs import ReedSolomonCode
from .vectorized import correct_pages, decode_pages, encode_pages

__all__ = ["PAGE_SIZE", "BATCH_MIN_PAGES", "PageCodec"]

PAGE_SIZE = 4096  # bytes; the x86 base page the paper codes over


def _batch_min() -> int:
    try:
        value = int(os.environ.get("REPRO_EC_BATCH_MIN", "1"))
    except ValueError:
        return 1
    return max(1, value)


# Batch-vs-scalar crossover: batches smaller than this take the per-page
# scalar path inside the ``*_batch`` entry points. Both paths are
# byte-identical (pinned by the property tests), so this is purely a
# tuning knob for deployments where slab-kernel setup overhead shows up
# on tiny batches. Default 1 = always batch.
BATCH_MIN_PAGES = _batch_min()


class PageCodec:
    """Splits pages into ``k`` shards and erasure-codes them with RS(k, r).

    Split length is ``ceil(page_size / k)``; the final shard is zero-padded.
    The paper's (8+2) default turns a 4 KB page into ten 512 B splits.
    """

    def __init__(
        self,
        k: int,
        r: int,
        page_size: int = PAGE_SIZE,
        plan_cache_capacity: Optional[int] = None,
    ):
        if page_size < 1:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if k > page_size:
            raise ValueError(f"k={k} exceeds page_size={page_size}")
        self.code = ReedSolomonCode(k, r, plan_cache_capacity=plan_cache_capacity)
        self.page_size = page_size
        self.split_size = -(-page_size // k)  # ceil division
        self.padded_size = self.split_size * k

    @property
    def k(self) -> int:
        return self.code.k

    @property
    def r(self) -> int:
        return self.code.r

    @property
    def n(self) -> int:
        return self.code.n

    # ------------------------------------------------------------------
    def split(self, page: bytes) -> np.ndarray:
        """Divide a page into the (k, split_size) data-split matrix."""
        if len(page) != self.page_size:
            raise ValueError(
                f"page must be exactly {self.page_size} bytes, got {len(page)}"
            )
        if self.padded_size == self.page_size:
            source = np.frombuffer(page, dtype=np.uint8)
            return source.reshape(self.k, self.split_size).copy()
        buffer = np.zeros(self.padded_size, dtype=np.uint8)
        buffer[: self.page_size] = np.frombuffer(page, dtype=np.uint8)
        return buffer.reshape(self.k, self.split_size)

    def join(self, data_splits: np.ndarray) -> bytes:
        """Reassemble a page from its k data splits (dropping padding)."""
        data_splits = np.asarray(data_splits, dtype=np.uint8)
        if data_splits.shape != (self.k, self.split_size):
            raise ValueError(
                f"expected shape {(self.k, self.split_size)}, got {data_splits.shape}"
            )
        return data_splits.reshape(-1)[: self.page_size].tobytes()

    # -- batch operations ----------------------------------------------
    def split_pages(self, pages: Sequence[bytes]) -> np.ndarray:
        """Divide many pages into a (pages, k, split_size) stack.

        Pages are gathered with one ``concatenate`` of ``frombuffer``
        views into a preallocated stack — no per-split copies and no
        slab-sized ``bytes`` temporary (a fresh multi-MB ``b"".join``
        costs more in allocator/page-fault overhead than the copy
        itself). Exact: row ``i`` equals ``split(pages[i])``.
        """
        count = len(pages)
        if self.padded_size == self.page_size:
            buffer = np.empty((count, self.page_size), dtype=np.uint8)
            if count:
                try:
                    np.concatenate(
                        [np.frombuffer(page, dtype=np.uint8) for page in pages],
                        out=buffer.reshape(-1),
                    )
                except ValueError:
                    raise ValueError(
                        f"every page must be exactly {self.page_size} bytes"
                    ) from None
            return buffer.reshape(count, self.k, self.split_size)
        buffer = np.zeros((count, self.padded_size), dtype=np.uint8)
        for i, page in enumerate(pages):
            if len(page) != self.page_size:
                raise ValueError(
                    f"page must be exactly {self.page_size} bytes, got {len(page)}"
                )
            buffer[i, : self.page_size] = np.frombuffer(page, dtype=np.uint8)
        return buffer.reshape(count, self.k, self.split_size)

    def join_pages(self, data_splits_stack: np.ndarray) -> List[bytes]:
        """Reassemble many pages from a (pages, k, split_size) stack."""
        stack = np.asarray(data_splits_stack, dtype=np.uint8)
        if stack.ndim != 3 or stack.shape[1:] != (self.k, self.split_size):
            raise ValueError(
                f"expected (pages, {self.k}, {self.split_size}) stack, "
                f"got {stack.shape}"
            )
        if not stack.shape[0]:
            return []  # reshape(0, -1) is a numpy error for empty stacks
        flat = np.ascontiguousarray(stack).reshape(stack.shape[0], -1)
        return [row[: self.page_size].tobytes() for row in flat]

    def encode_batch(self, pages: Sequence[bytes]) -> np.ndarray:
        """Many pages -> (pages, k + r, split_size) stack, one kernel pass.

        With the native kernel loaded (and no padding in play), the full
        systematic generator is applied straight over the caller's page
        buffers — identity rows become ``memcpy`` into the data block,
        parity rows one table-gather sweep each — so the whole batch
        costs zero staging copies. Fallback: gather + ``encode_pages``.
        Both orders of operations run the identical MUL_TABLE lookups.
        """
        if 0 < len(pages) < BATCH_MIN_PAGES:
            return np.stack([self.encode(page) for page in pages])
        code = self.code
        native = code._native
        if (
            native is not None
            and self.padded_size == self.page_size
            and all(type(page) is bytes for page in pages)
        ):
            count = len(pages)
            for page in pages:
                if len(page) != self.page_size:
                    raise ValueError(
                        f"page must be exactly {self.page_size} bytes, "
                        f"got {len(page)}"
                    )
            out = np.empty((count, code.n, self.split_size), dtype=np.uint8)
            if count:
                native.matrix_apply_pages(code.generator, pages, out)
            return out
        return encode_pages(self.code, self.split_pages(pages))

    def decode_batch(
        self, indices: Sequence[int], payload_stack: np.ndarray
    ) -> List[bytes]:
        """Decode many pages that share one split-index combination.

        ``payload_stack`` is (pages, k, split_size) with row ``j`` holding
        the payload received at ``indices[j]``. Exact match for per-page
        ``decode``.
        """
        count = len(payload_stack)
        if 0 < count < BATCH_MIN_PAGES:
            return [
                self.decode(
                    {index: payload_stack[p, j] for j, index in enumerate(indices)}
                )
                for p in range(count)
            ]
        return self.join_pages(decode_pages(self.code, indices, payload_stack))

    def correct_batch(
        self,
        indices: Sequence[int],
        payload_stack: np.ndarray,
        max_errors: Optional[int] = None,
        best_effort: bool = False,
    ) -> Tuple[List[bytes], List[List[int]]]:
        """Correct many pages that share one split-index combination.

        ``payload_stack`` is (pages, len(indices), split_size). Returns
        ``(pages, corrupted)`` with per-page located corruption lists —
        exact match for per-page :meth:`correct`, but clean pages ride one
        batched residual check + decode (see ``vectorized.correct_pages``).
        """
        count = len(payload_stack)
        if 0 < count < BATCH_MIN_PAGES:
            pages: List[bytes] = []
            bad: List[List[int]] = []
            for p in range(count):
                received = {
                    index: payload_stack[p, j] for j, index in enumerate(indices)
                }
                page, page_bad = self.correct(
                    received, max_errors=max_errors, best_effort=best_effort
                )
                pages.append(page)
                bad.append(page_bad)
            return pages, bad
        data_stack, corrupted = correct_pages(
            self.code,
            indices,
            payload_stack,
            max_errors=max_errors,
            best_effort=best_effort,
        )
        return self.join_pages(data_stack), corrupted

    # ------------------------------------------------------------------
    def encode(self, page: bytes) -> np.ndarray:
        """Page -> all (k + r) splits, data first then parity."""
        return self.code.encode_page(self.split(page))

    def decode(self, splits: Dict[int, np.ndarray]) -> bytes:
        """Any k splits -> original page bytes."""
        return self.join(self.code.decode(splits))

    def decode_verified(self, splits: Dict[int, np.ndarray]) -> bytes:
        """Decode with consistency checking (raises CorruptionDetected)."""
        return self.join(self.code.decode_verified(splits))

    def verify(self, splits: Dict[int, np.ndarray]) -> bool:
        """Consistency check alone — no page assembly (see RS.verify)."""
        return self.code.verify(splits)

    def correct(
        self,
        splits: Dict[int, np.ndarray],
        max_errors: Optional[int] = None,
        best_effort: bool = False,
    ) -> Tuple[bytes, List[int]]:
        """Locate/fix up to ``max_errors`` corruptions; see Table 1."""
        data, corrupted = self.code.correct(
            splits, max_errors=max_errors, best_effort=best_effort
        )
        return self.join(data), corrupted

    # ------------------------------------------------------------------
    def splits_required(
        self, detect_errors: int = 0, correct_errors: int = 0
    ) -> int:
        """Minimum splits per Table 1 for the requested guarantee."""
        if correct_errors:
            return self.k + 2 * correct_errors + 1
        if detect_errors:
            return self.k + detect_errors
        return self.k

    def __repr__(self) -> str:
        return (
            f"PageCodec(k={self.k}, r={self.r}, page_size={self.page_size}, "
            f"split_size={self.split_size})"
        )
