"""Matrix algebra over GF(2^8).

Matrices are 2-D numpy uint8 arrays. Only the operations the Reed-Solomon
codec needs are implemented: multiplication, Gauss-Jordan inversion, and the
Cauchy construction used for the systematic generator matrix.
"""

from __future__ import annotations

import numpy as np

from .galois import MUL_TABLE, gf_inv

__all__ = [
    "SingularMatrixError",
    "gf_matmul",
    "gf_mat_inverse",
    "cauchy_parity_matrix",
    "systematic_generator",
]


class SingularMatrixError(ValueError):
    """Raised when inverting a matrix with no inverse over GF(2^8)."""


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Shapes follow normal matmul rules: (m, n) @ (n, p) -> (m, p). ``b`` may
    also be a stack of row vectors, e.g. split payloads of shape
    (n, split_len).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gf_matmul needs 2-D operands, got {a.shape} @ {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        acc = out[i]
        row = a[i]
        for j in range(a.shape[1]):
            coefficient = int(row[j])
            if coefficient == 0:
                continue
            acc ^= MUL_TABLE[coefficient][b[j]]
    return out


def gf_mat_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix via Gauss-Jordan elimination over GF(2^8)."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"inverse requires a square matrix, got {matrix.shape}")
    n = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)

    for col in range(n):
        # Find a pivot at or below the diagonal.
        pivot_row = -1
        for row in range(col, n):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row < 0:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        # Normalize the pivot row.
        pivot_inv = gf_inv(int(work[col, col]))
        if pivot_inv != 1:
            work[col] = MUL_TABLE[pivot_inv][work[col]]
            inverse[col] = MUL_TABLE[pivot_inv][inverse[col]]
        # Eliminate the column everywhere else.
        for row in range(n):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            work[row] ^= MUL_TABLE[factor][work[col]]
            inverse[row] ^= MUL_TABLE[factor][inverse[col]]
    return inverse


def cauchy_parity_matrix(k: int, r: int) -> np.ndarray:
    """The r x k Cauchy block: C[i][j] = 1 / (x_i + y_j).

    With x_i = k + i and y_j = j (all distinct field elements), every square
    submatrix of a Cauchy matrix is invertible, which gives the systematic
    generator the any-k-of-(k+r) decodability the codec relies on.
    """
    if k < 1 or r < 0:
        raise ValueError(f"invalid code parameters k={k}, r={r}")
    if k + r > 256:
        raise ValueError(f"k + r = {k + r} exceeds GF(2^8) element count")
    block = np.zeros((r, k), dtype=np.uint8)
    for i in range(r):
        for j in range(k):
            block[i, j] = gf_inv((k + i) ^ j)
    return block


def systematic_generator(k: int, r: int) -> np.ndarray:
    """(k+r) x k systematic generator: identity on top, Cauchy block below.

    Row i < k reproduces data split i verbatim; rows k..k+r-1 produce the
    parity splits. Any k rows form an invertible k x k matrix.
    """
    generator = np.zeros((k + r, k), dtype=np.uint8)
    generator[:k] = np.eye(k, dtype=np.uint8)
    if r:
        generator[k:] = cauchy_parity_matrix(k, r)
    return generator
