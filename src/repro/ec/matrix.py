"""Matrix algebra over GF(2^8).

Matrices are 2-D numpy uint8 arrays. Only the operations the Reed-Solomon
codec needs are implemented: multiplication, Gauss-Jordan inversion, and the
Cauchy construction used for the systematic generator matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .galois import MUL_TABLE, gf_inv
from .native import load_native

__all__ = [
    "SingularMatrixError",
    "gf_matmul",
    "gf_matmul_slab",
    "gf_matmul_rows",
    "gf_row_plan",
    "gf_apply_row_plan",
    "gf_apply_row_plan_into",
    "gf_apply_matrix_rows_into",
    "gf_mat_inverse",
    "cauchy_parity_matrix",
    "systematic_generator",
]


class SingularMatrixError(ValueError):
    """Raised when inverting a matrix with no inverse over GF(2^8)."""


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Shapes follow normal matmul rules: (m, n) @ (n, p) -> (m, p). ``b`` may
    also be a stack of row vectors, e.g. split payloads of shape
    (n, split_len) — or many pages' splits laid side by side, which is how
    the batch codec amortizes one product over a whole slab.

    Dispatches to :func:`gf_matmul_slab`, so slab-sized products hit the
    native SIMD kernel when one compiled (see :mod:`.native`) and the
    translate-based numpy kernel otherwise; both perform the exact
    MUL_TABLE lookups of the original coefficient loop, byte for byte.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gf_matmul needs 2-D operands, got {a.shape} @ {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    return gf_matmul_slab(a, b)


# 256-byte translation tables for the numpy slab kernel: bytes.translate
# runs the same per-byte MUL_TABLE lookup as ndarray.take but about 2x
# faster (measured), and the table universe is capped at 256 entries.
_TRANSLATE_TABLES: dict = {}


def _translate_table(coefficient: int) -> bytes:
    table = _TRANSLATE_TABLES.get(coefficient)
    if table is None:
        table = MUL_TABLE[coefficient].tobytes()
        _TRANSLATE_TABLES[coefficient] = table
    return table


def _matmul_slab_numpy(a: np.ndarray, src: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Pure-numpy slab kernel (and the reference the native path is
    property-tested against). One translate per nonzero non-unit
    coefficient over the whole flat slab; unit coefficients are XORs."""
    for i, coefficients in enumerate(a.tolist()):
        acc = out[i]
        first = True
        for coefficient, row in zip(coefficients, src):
            if coefficient == 0:
                continue
            if coefficient == 1:
                term = row
            else:
                term = np.frombuffer(
                    row.tobytes().translate(_translate_table(coefficient)),
                    dtype=np.uint8,
                )
            if first:
                acc[:] = term
                first = False
            else:
                np.bitwise_xor(acc, term, out=acc)
        if first:
            acc[:] = 0
    return out


def gf_matmul_slab(
    a: np.ndarray, src: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """``a @ src`` over GF(2^8) on a flat (rows, N) slab.

    The batched kernel behind every slab-wide coding operation: ``src``
    stacks whole slabs of pages side by side (rows-major, so one
    coefficient application covers every page at once) and each nonzero
    coefficient costs a single table-lookup sweep of the full stack. The
    native ``pshufb`` kernel is used when available; the numpy fallback
    produces byte-identical output. ``out`` may be preallocated
    (C-contiguous, shape ``(a.rows, N)``).
    """
    a = np.ascontiguousarray(a, dtype=np.uint8)
    if src.dtype != np.uint8 or not src.flags.c_contiguous:
        src = np.ascontiguousarray(src, dtype=np.uint8)
    if out is None:
        out = np.empty((a.shape[0], src.shape[1]), dtype=np.uint8)
    kernel = load_native()
    if kernel is not None and out.flags.c_contiguous:
        kernel.matrix_apply(a, src, out)
        return out
    return _matmul_slab_numpy(a, src, out)


def gf_matmul_rows(a: np.ndarray, rows_b) -> np.ndarray:
    """``gf_matmul(a, np.stack(rows_b))`` without materializing the stack.

    ``rows_b`` is a sequence of equal-length 1-D uint8 arrays. The per-page
    decode/verify paths already hold the received splits as separate row
    vectors; gathering from them in place skips one (k, split) copy per
    call. Exact same result as stacking first.
    """
    out = np.zeros((a.shape[0], rows_b[0].shape[0]), dtype=np.uint8)
    scratch = np.empty(rows_b[0].shape[0], dtype=np.uint8)
    for i, coefficients in enumerate(a.tolist()):
        acc = out[i]
        for coefficient, b_row in zip(coefficients, rows_b):
            if coefficient == 0:
                continue
            if coefficient == 1:
                acc ^= b_row
            else:
                # ndarray.take into scratch: one gather temp for the whole
                # product instead of one fresh array per term
                MUL_TABLE[coefficient].take(b_row, out=scratch)
                np.bitwise_xor(acc, scratch, out=acc)
    return out


def gf_row_plan(a: np.ndarray):
    """Precompile ``a`` into a row plan for :func:`gf_apply_row_plan`.

    Decode/encode matrices are tiny, heavily cached, and applied thousands
    of times each; compiling them once moves the zero-scan and the
    unit-row detection out of the hot loop. Each output row becomes either
    a bare source index (the row is a unit vector — the product is a
    verbatim copy of that input row) or a list of (coefficient, source)
    pairs over the non-zero coefficients.
    """
    a = np.asarray(a, dtype=np.uint8)
    plan = []
    for coefficients in a.tolist():
        terms = [(c, j) for j, c in enumerate(coefficients) if c != 0]
        if len(terms) == 1 and terms[0][0] == 1:
            plan.append(terms[0][1])
        else:
            plan.append(terms)
    return plan


def gf_apply_row_plan(plan, rows_b) -> np.ndarray:
    """Apply a :func:`gf_row_plan` to row vectors — same result as
    ``gf_matmul_rows`` with the planned matrix."""
    out = np.empty((len(plan), rows_b[0].shape[0]), dtype=np.uint8)
    return gf_apply_row_plan_into(plan, rows_b, out)


def gf_apply_row_plan_into(plan, rows_b, out, scratch=None) -> np.ndarray:
    """Apply a row plan into the preallocated ``(len(plan), L)`` ``out``.

    The fused form of :func:`gf_apply_row_plan`: every term's table gather
    lands in ``scratch`` (one ``L``-byte buffer for the whole product,
    allocated here when the caller doesn't pass one) and accumulates into
    ``out`` with in-place XOR, so a planned multiply touches no fresh
    memory beyond what the caller provides. ``out`` is returned.
    """
    if scratch is None:
        scratch = np.empty(rows_b[0].shape[0], dtype=np.uint8)
    for i, row_plan in enumerate(plan):
        if type(row_plan) is int:
            out[i] = rows_b[row_plan]
            continue
        acc = out[i]
        if not row_plan:
            acc[:] = 0
            continue
        coefficient, j = row_plan[0]
        if coefficient == 1:
            acc[:] = rows_b[j]
        else:
            MUL_TABLE[coefficient].take(rows_b[j], out=acc)
        for coefficient, j in row_plan[1:]:
            if coefficient == 1:
                np.bitwise_xor(acc, rows_b[j], out=acc)
            else:
                MUL_TABLE[coefficient].take(rows_b[j], out=scratch)
                np.bitwise_xor(acc, scratch, out=acc)
    return out


def gf_apply_matrix_rows_into(matrix, plan, rows_b, out, scratch=None) -> np.ndarray:
    """Matrix product over scattered row vectors, into ``out``.

    The per-page hot-path dispatcher: with the native kernel loaded this
    is one C call over the row pointers (``matrix`` must be the
    C-contiguous uint8 matrix the ``plan`` was compiled from); otherwise
    it falls through to :func:`gf_apply_row_plan_into`. Results are
    byte-identical either way — both run the same MUL_TABLE lookups.
    """
    kernel = load_native()
    if kernel is not None and out.flags.c_contiguous:
        rows = [
            row if row.flags.c_contiguous else np.ascontiguousarray(row)
            for row in rows_b
        ]
        kernel.matrix_apply_rows(matrix, rows, out)
        return out
    return gf_apply_row_plan_into(plan, rows_b, out, scratch)


def gf_mat_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix via Gauss-Jordan elimination over GF(2^8)."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"inverse requires a square matrix, got {matrix.shape}")
    n = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)

    for col in range(n):
        # Find a pivot at or below the diagonal.
        pivot_row = -1
        for row in range(col, n):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row < 0:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        # Normalize the pivot row.
        pivot_inv = gf_inv(int(work[col, col]))
        if pivot_inv != 1:
            work[col] = MUL_TABLE[pivot_inv][work[col]]
            inverse[col] = MUL_TABLE[pivot_inv][inverse[col]]
        # Eliminate the column everywhere else.
        for row in range(n):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            work[row] ^= MUL_TABLE[factor][work[col]]
            inverse[row] ^= MUL_TABLE[factor][inverse[col]]
    return inverse


def cauchy_parity_matrix(k: int, r: int) -> np.ndarray:
    """The r x k Cauchy block: C[i][j] = 1 / (x_i + y_j).

    With x_i = k + i and y_j = j (all distinct field elements), every square
    submatrix of a Cauchy matrix is invertible, which gives the systematic
    generator the any-k-of-(k+r) decodability the codec relies on.
    """
    if k < 1 or r < 0:
        raise ValueError(f"invalid code parameters k={k}, r={r}")
    if k + r > 256:
        raise ValueError(f"k + r = {k + r} exceeds GF(2^8) element count")
    block = np.zeros((r, k), dtype=np.uint8)
    for i in range(r):
        for j in range(k):
            block[i, j] = gf_inv((k + i) ^ j)
    return block


def systematic_generator(k: int, r: int) -> np.ndarray:
    """(k+r) x k systematic generator: identity on top, Cauchy block below.

    Row i < k reproduces data split i verbatim; rows k..k+r-1 produce the
    parity splits. Any k rows form an invertible k x k matrix.
    """
    generator = np.zeros((k + r, k), dtype=np.uint8)
    generator[:k] = np.eye(k, dtype=np.uint8)
    if r:
        generator[k:] = cauchy_parity_matrix(k, r)
    return generator
