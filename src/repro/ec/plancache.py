"""Bounded LRU cache for compiled coding plans.

Every ``ReedSolomonCode`` keeps per-erasure-pattern artifacts — decode
matrices, extras transforms, residual-ratio tables, rebuild rows. A
steady-state Resilience Manager sees a handful of patterns, but chaos
soaks churn through machine subsets and previously these four caches
grew without bound for the life of the codec. ``PlanCache`` is the
shared replacement: one ordered map over namespaced keys with
move-to-end on hit and eviction from the cold end.

Capacity comes from the constructor (codec argument) with the
``REPRO_EC_PLAN_CACHE_CAP`` environment variable as the process-wide
default. Hit/miss/eviction totals are plain ints so the codec stays
usable standalone; call :meth:`bind_eviction_counter` to mirror
evictions into a live ``MetricsRegistry`` counter (the Resilience
Manager does this at construction).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["PlanCache", "DEFAULT_PLAN_CACHE_CAPACITY"]


def _default_capacity() -> int:
    try:
        value = int(os.environ.get("REPRO_EC_PLAN_CACHE_CAP", "512"))
    except ValueError:
        return 512
    return max(1, value)


DEFAULT_PLAN_CACHE_CAPACITY = _default_capacity()


class PlanCache:
    """An LRU mapping from plan keys to compiled plan objects."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is None:
            capacity = DEFAULT_PLAN_CACHE_CAPACITY
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._eviction_counters: list = []

    def bind_eviction_counter(self, counter) -> None:
        """Mirror future evictions into ``counter.value`` (a
        MetricsRegistry scalar counter). A shared cache may have several
        observers — every RM bound to it sees every eviction."""
        if counter not in self._eviction_counters:
            self._eviction_counters.append(counter)

    def get(self, key: Hashable):
        """The cached plan, refreshed to most-recently-used; None on miss."""
        entries = self._entries
        value = entries.get(key)
        if value is None:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert (or refresh) ``key``, evicting from the cold end."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            for counter in self._eviction_counters:
                counter.value += 1
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def snapshot(self) -> dict:
        """Counter snapshot for reports: size/capacity/hits/misses/evictions."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
