"""Figure 1: remote-read latency under failure vs memory overhead.

Paper's point set: SSD backup (1x, disk-bound), 2x/3x replication (fast,
expensive), compression (~1.3x, >10 µs), naive RS-over-RDMA (~1.25x,
~20 µs), Hydra (1.25x, single-µs). The reproduction must place Hydra in
the lower-left corner: replication-class latency at near-RS overhead.
"""

from conftest import write_report

from repro.harness import banner, format_table, tradeoff_sweep


def test_fig01_tradeoff(benchmark):
    points = benchmark.pedantic(
        lambda: tradeoff_sweep(machines=12, seed=1, with_failure=True),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            p.scheme,
            p.memory_overhead,
            p.read_p50_us,
            p.read_p99_us,
            p.write_p50_us,
            p.write_p99_us,
        ]
        for p in points
    ]
    text = banner("Figure 1 — performance vs efficiency under failure") + "\n"
    text += format_table(
        ["scheme", "mem overhead (x)", "read p50 (us)", "read p99 (us)",
         "write p50 (us)", "write p99 (us)"],
        rows,
    )
    write_report("fig01_tradeoff", text)

    by_scheme = {p.scheme: p for p in points}
    hydra = by_scheme["hydra"]
    # The paper's qualitative placement of every point:
    assert hydra.memory_overhead == 1.25
    assert hydra.read_p50_us < 10.0  # single-µs class
    assert by_scheme["ssd_backup"].read_p50_us > 10 * hydra.read_p50_us
    assert by_scheme["rs_naive"].read_p50_us > 2.5 * hydra.read_p50_us
    assert by_scheme["compressed"].read_p50_us > hydra.read_p50_us
    assert by_scheme["replication_2x"].memory_overhead == 2.0
    assert by_scheme["replication_3x"].memory_overhead == 3.0
    benchmark.extra_info["hydra_read_p50_us"] = round(hydra.read_p50_us, 2)
    benchmark.extra_info["ssd_read_p50_us"] = round(
        by_scheme["ssd_backup"].read_p50_us, 2
    )
