"""Ablation: per-page coding (Hydra, §4) vs batch coding (EC-Cache-style).

The paper's §4 opens by asserting that Hydra "encodes and decodes each
4 KB page independently instead of batch-coding across multiple pages",
trading a little coding efficiency for (a) no batch-waiting time on
writes, (b) no unnecessary stripe bytes on reads. This ablation makes the
claim measurable: the batch-coded backend suffers on both axes, and the
damage grows with the batch size.
"""

import pytest
from conftest import write_report

from repro.baselines import BaselineConfig, BatchCodedBackend
from repro.cluster import Cluster
from repro.harness import banner, build_hydra_cluster, format_table, measure_latency
from repro.net import NetworkConfig
from repro.sim import RandomSource

QUIET = NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0)


def _batch_latency(batch_pages, seed=41):
    cluster = Cluster(
        machines=14, memory_per_machine=1 << 26, network=QUIET, seed=seed
    )
    backend = BatchCodedBackend(
        cluster, 0, BaselineConfig(slab_size_bytes=1 << 20),
        rng=RandomSource(seed, "batch"),
        k=8, r=2, batch_pages=batch_pages, batch_timeout_us=50.0,
    )
    return measure_latency(
        backend, cluster.sim, label=f"batch={batch_pages}",
        n_pages=48, writes=200, reads=200, seed=seed,
    )


def test_ablation_batch_vs_per_page_coding(benchmark):
    def run():
        hydra_cluster = build_hydra_cluster(
            machines=14, k=8, r=2, seed=41, network=QUIET
        )
        hydra = measure_latency(
            hydra_cluster.remote_memory(0), hydra_cluster.sim,
            label="per-page (hydra)", n_pages=48, writes=200, reads=200, seed=41,
        )
        batches = {b: _batch_latency(b) for b in (2, 8, 32)}
        return hydra, batches

    hydra, batches = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["per-page (hydra)", hydra.read.p50, hydra.write.p50, hydra.write.p99]]
    for batch_pages, result in batches.items():
        rows.append(
            [f"batch={batch_pages} pages", result.read.p50,
             result.write.p50, result.write.p99]
        )
    text = banner("Ablation — per-page vs batch coding (us)") + "\n"
    text += format_table(
        ["scheme", "read p50", "write p50", "write p99"], rows
    )
    text += "\n(§4: per-page coding avoids batch-waiting and stripe-read overheads)"
    write_report("ablation_batch_coding", text)

    # Batch waiting dominates batch-coded writes at low concurrency.
    for result in batches.values():
        assert result.write.p50 > 3 * hydra.write.p50
    # Reading one page from a stripe moves more bytes as batches grow.
    assert batches[32].read.p50 > batches[2].read.p50
    assert batches[32].read.p50 > hydra.read.p50
    benchmark.extra_info["hydra_write_p50"] = round(hydra.write.p50, 2)
    benchmark.extra_info["batch32_write_p50"] = round(batches[32].write.p50, 2)
