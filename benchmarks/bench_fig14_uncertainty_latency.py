"""Figure 14: microbenchmark latency under (a) background flows and
(b) a remote failure.

Paper shapes:
(a) Hydra keeps consistent latency under bulk background flows thanks to
    late binding — 1.97-2.56x better than SSD backup and even beating
    replication at the 99th percentile;
(b) under a remote failure SSD backup becomes disk-bound (8-13x worse),
    while Hydra matches replication.
"""

from conftest import write_report

from repro.harness import banner, build_pool, format_table, victim_machines
from repro.harness.microbench import page_generator, run_process
from repro.net import start_background_load
from repro.sim import RandomSource, summarize

BACKENDS = ("ssd_backup", "replication", "hydra")
N_PAGES = 48
OPS = 300


def _measure(backend, disturbance, seed=14):
    cluster, pool = build_pool(backend, machines=12, seed=seed)
    sim = cluster.sim
    make_page = page_generator()

    def warm():
        for page_id in range(N_PAGES):
            yield pool.write(page_id, make_page(page_id))

    run_process(sim, sim.process(warm(), name="warm"), until=1e10)

    if disturbance == "background":
        # Continuous bulk flows on the machines holding the data.
        start_background_load(
            cluster.fabric, victim_machines(pool, 2), flows_per_target=2
        )
    elif disturbance == "failure":
        victims = victim_machines(pool, 1)
        cluster.machine(victims[0]).fail()
        sim.run(until=sim.now + 1000.0)

    rng = RandomSource(seed, f"fig14/{backend}/{disturbance}")
    reads, writes = [], []

    def bench():
        for _ in range(OPS):
            page_id = rng.randint(0, N_PAGES - 1)
            start = sim.now
            yield pool.read(page_id)
            reads.append(sim.now - start)
        for _ in range(OPS):
            page_id = rng.randint(0, N_PAGES - 1)
            start = sim.now
            yield pool.write(page_id, make_page(page_id))
            writes.append(sim.now - start)

    run_process(sim, sim.process(bench(), name="bench"), until=1e10)
    return summarize(reads, name="read"), summarize(writes, name="write")


def _report(tag, title, results):
    rows = [
        [b, r.p50, r.p99, w.p50, w.p99] for b, (r, w) in results.items()
    ]
    text = banner(title) + "\n"
    text += format_table(
        ["backend", "read p50", "read p99", "write p50", "write p99"], rows
    )
    write_report(tag, text)


def test_fig14a_background_flows(benchmark):
    results = benchmark.pedantic(
        lambda: {b: _measure(b, "background") for b in BACKENDS},
        rounds=1, iterations=1,
    )
    _report("fig14a_background", "Figure 14a — latency under background flows (us)", results)
    hydra_read, hydra_write = results["hydra"]
    repl_read, repl_write = results["replication"]
    ssd_read, _ssd_write = results["ssd_backup"]
    # Hydra's split-sized messages + late binding keep it fastest.
    assert hydra_read.p50 < ssd_read.p50
    assert hydra_read.p99 <= repl_read.p99  # beats replication at the tail
    assert hydra_write.p50 < repl_write.p50
    benchmark.extra_info["hydra_read_p99"] = round(hydra_read.p99, 2)
    benchmark.extra_info["replication_read_p99"] = round(repl_read.p99, 2)


def test_fig14b_remote_failure(benchmark):
    results = benchmark.pedantic(
        lambda: {b: _measure(b, "failure") for b in BACKENDS},
        rounds=1, iterations=1,
    )
    _report("fig14b_failure", "Figure 14b — latency under remote failure (us)", results)
    hydra_read, hydra_write = results["hydra"]
    repl_read, _repl_write = results["replication"]
    ssd_read, ssd_write = results["ssd_backup"]
    # SSD backup is disk-bound; Hydra stays memory-speed like replication.
    assert ssd_read.p50 > 5 * hydra_read.p50
    assert hydra_read.p50 < 2.0 * repl_read.p50
    benchmark.extra_info["ssd_read_p50"] = round(ssd_read.p50, 2)
    benchmark.extra_info["hydra_read_p50"] = round(hydra_read.p50, 2)
