"""Figure 15: Hydra's throughput timelines in the Figure 2 scenarios.

The paper's claim: Hydra performs like replication under every §2.2
uncertainty at 1.6x lower memory overhead; the corruption scenario runs
with r=3 (handled inside the scenario runner, per §7.3.2).
"""

import pytest
from conftest import write_report

from repro.harness import ascii_timeline, banner, run_uncertainty_scenario

SCENARIOS = ("failure", "corruption", "background", "burst")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig15_hydra_timeline(benchmark, scenario):
    result = benchmark.pedantic(
        lambda: run_uncertainty_scenario("hydra", scenario, seed=3),
        rounds=1,
        iterations=1,
    )
    text = banner(f"Figure 15 ({scenario}) — Hydra, VoltDB-like @50% fit") + "\n"
    text += ascii_timeline({"hydra": (result.times_us, result.throughput_ops)}) + "\n"
    text += (
        f"drop after event = {result.throughput_drop() * 100:+.1f}%   "
        f"op p50/p99 = {result.op_latency.p50 / 1e3:.2f}/"
        f"{result.op_latency.p99 / 1e3:.2f} ms\n"
    )
    text += f"resilience events: {result.events}"
    write_report(f"fig15_{scenario}", text)

    benchmark.extra_info["drop"] = round(result.throughput_drop(), 3)
    # Hydra sustains throughput: no SSD-backup-style collapse anywhere.
    # (The burst scenario's drop is bounded by the extra per-txn work the
    # burst itself adds, not by a disk bottleneck.)
    limit = 0.60 if scenario == "burst" else 0.35
    assert result.throughput_drop() < limit
    if scenario == "failure":
        assert result.events.get("disconnects", 0) >= 1
    if scenario == "corruption":
        # Detectable corruption was actually exercised and survived.
        assert result.events.get("read_failures", 0) == 0
