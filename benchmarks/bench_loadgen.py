"""Latency-under-load curve: open-loop sweep to saturation.

The paper's throughput numbers are closed-loop; this benchmark drives the
open-loop engine across offered loads straddling the pool's measured
capacity (~77k req/s at concurrency 2) and regenerates the
throughput-vs-p99 curve with bootstrap CIs and the detected saturation
knee. The qualitative shape is the regression: flat tail below the knee,
explosive tail above it, achieved throughput clamped at capacity.
"""

from conftest import write_report

from repro.harness import banner
from repro.harness.loadgen import detect_knee, format_sweep, run_sweep

_RATES = (20_000.0, 50_000.0, 80_000.0, 110_000.0)


def test_loadgen_curve(benchmark):
    doc = benchmark.pedantic(
        lambda: run_sweep(
            rates=_RATES, seeds=2, duration_us=60_000.0, quick=True, jobs=1
        ),
        rounds=1,
        iterations=1,
    )
    text = banner("Latency under load — open-loop sweep") + "\n"
    text += format_sweep(doc)
    write_report("loadgen_curve", text)

    points = doc["points"]
    below, above = points[0], points[-1]
    # Below the knee the generator keeps up; above it completions clamp.
    assert below["achieved_per_sec"] > 0.9 * below["offered_per_sec"]
    assert above["achieved_per_sec"] < 0.85 * above["offered_per_sec"]
    # Tail latency explodes across the knee — orders, not percent.
    assert above["p99_us"] > 20 * below["p99_us"]
    # CIs bracket their point estimates at every offered load.
    for point in points:
        assert point["p99_ci_us"][0] <= point["p99_us"] <= point["p99_ci_us"][1]
    # The sweep straddles capacity, so the knee must be detected — and
    # re-running the detector on the document's own curve must agree.
    assert doc["knee"] is not None
    assert doc["knee"] == detect_knee(
        [p["offered_per_sec"] for p in points],
        [p["p99_us"] for p in points],
    )
    benchmark.extra_info["knee_offered_per_sec"] = doc["knee"]["offered_per_sec"]
    benchmark.extra_info["capacity_per_sec"] = above["achieved_per_sec"]
    benchmark.extra_info["p99_below_knee_us"] = below["p99_us"]
    benchmark.extra_info["p99_above_knee_us"] = above["p99_us"]
