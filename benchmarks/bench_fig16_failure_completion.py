"""Figure 16: application completion times with one remote failure
mid-run (the paper plots this on a log scale).

Paper shapes: with a failure injected while running at the 50% fit,
SSD backup inflates completion 1.3-5.75x, while Hydra stays within a few
percent of replication.
"""

from conftest import write_report

from repro.harness import banner, format_table, run_app

WORKLOADS = ("voltdb", "etc", "sys")
BACKENDS = ("ssd_backup", "hydra", "replication")


def test_fig16_completion_under_failure(benchmark):
    def run():
        results = {}
        for workload in WORKLOADS:
            for backend in BACKENDS:
                results[(workload, backend)] = run_app(
                    backend, workload, fit=0.5, machines=12, seed=16,
                    n_pages=1200, total_ops=1200, fail_at_us=30_000.0,
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [w] + [results[(w, b)].completion_us / 1e3 for b in BACKENDS]
        for w in WORKLOADS
    ]
    text = banner("Figure 16 — completion time with a mid-run failure (ms)") + "\n"
    text += format_table(["workload"] + list(BACKENDS), rows)
    write_report("fig16_failure_completion", text)

    for workload in WORKLOADS:
        ssd = results[(workload, "ssd_backup")].completion_us
        hydra = results[(workload, "hydra")].completion_us
        repl = results[(workload, "replication")].completion_us
        assert ssd > 1.2 * hydra  # SSD backup pays the disk penalty
        assert hydra < 1.3 * repl  # Hydra tracks replication
    benchmark.extra_info["voltdb_ssd_over_hydra"] = round(
        results[("voltdb", "ssd_backup")].completion_us
        / results[("voltdb", "hydra")].completion_us,
        2,
    )
