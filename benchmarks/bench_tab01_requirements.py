"""Table 1: minimum splits and memory overhead per resilience guarantee —
and an empirical check that the codec enforces exactly those minima.
"""

import numpy as np
from conftest import write_report

from repro.analysis import requirements
from repro.ec import CorruptionDetected, DecodeError, PageCodec
from repro.harness import banner, format_table


def test_tab01_requirements(benchmark):
    def run():
        rows = requirements(k=8, r=2, delta=1)
        # Empirical verification on real bytes with RS(8, 3) (enough
        # splits to exercise the correction row).
        codec = PageCodec(8, 3)
        rng = np.random.default_rng(1)
        page = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        splits = codec.encode(page)

        # Failure row: k splits decode, k-1 cannot.
        assert codec.decode({i: splits[i] for i in range(8)}) == page
        try:
            codec.decode({i: splits[i] for i in range(7)})
            raise AssertionError("decoded from k-1 splits?!")
        except DecodeError:
            pass

        # Detection row: k+1 splits detect one corruption; k do not.
        tampered = {i: splits[i].copy() for i in range(9)}
        tampered[0][0] ^= 0xFF
        try:
            codec.decode_verified(tampered)
            raise AssertionError("missed a detectable corruption")
        except CorruptionDetected:
            pass

        # Correction row: k+3 splits locate and fix one corruption.
        received = {i: splits[i].copy() for i in range(11)}
        received[4][1] ^= 0x3C
        fixed, bad = codec.correct(received, max_errors=1)
        assert fixed == page and bad == [4]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = banner("Table 1 — minimum splits per guarantee (k=8, r=2, Δ=1)") + "\n"
    text += format_table(
        ["scenario", "# errors", "min # splits", "memory overhead"],
        [[r.scenario, r.errors, r.min_splits, f"{r.memory_overhead:.3f}x"] for r in rows],
    )
    write_report("tab01_requirements", text)

    by_name = {r.scenario: r for r in rows}
    assert by_name["failure"].min_splits == 8
    assert by_name["error detection"].min_splits == 9
    assert by_name["error correction"].min_splits == 11
    assert by_name["failure"].memory_overhead == 1.25
