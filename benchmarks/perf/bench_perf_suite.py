"""Wall-clock perf-regression smoke (host performance, not simulated time).

Runs the deterministic microbench suite behind ``python -m repro perf`` in
quick mode, sanity-checks the result document, and writes it to
``BENCH_perf.json`` at the repository root. Absolute throughput numbers
depend on the host, so nothing here asserts a threshold — the job exists
to catch crashes and schema drift, and to archive a comparable artifact
per run (see ``docs/PERFORMANCE.md`` for how to compare two of them).
"""

import json
from pathlib import Path

from repro.harness.perf import SCHEMA, format_results, run_perf_suite

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_BENCHMARKS = {
    "engine_events",
    "ec_encode",
    "ec_decode",
    "ec_verify",
    "ec_correct",
    "ec_batch_encode",
    "ec_batch_decode",
    "rm_end_to_end",
}


def test_perf_suite_quick():
    doc = run_perf_suite(quick=True)

    assert doc["schema"] == SCHEMA
    assert set(doc["benchmarks"]) == EXPECTED_BENCHMARKS
    for name, row in doc["benchmarks"].items():
        assert row["seconds"] > 0, name
    assert doc["benchmarks"]["engine_events"]["events_per_sec"] > 0
    rm = doc["benchmarks"]["rm_end_to_end"]
    assert rm["pages_per_sec"] > 0
    # Simulated-time anchors: host speed must never change these.
    assert len(rm["pages_sha256"]) == 64
    assert rm["sim_now_us"] > 0

    out = REPO_ROOT / "BENCH_perf.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(format_results(doc))
    print(f"wrote {out}")
