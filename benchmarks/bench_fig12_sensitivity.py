"""Figure 12: sensitivity to the coding parameters (k, Δ, r).

Paper shapes:
(a) k=1 -> k=2 cuts read latency (parallelism); large k deteriorates;
(b) Δ=0 -> Δ=1 cuts the read *tail*; more extra reads have diminishing
    returns and eventually hurt (communication overhead);
(c) r barely moves the write median (parities are asynchronous); the tail
    grows from r=3 onward.
"""

from conftest import write_report

from repro.harness import banner, build_hydra_cluster, format_table, measure_latency
from repro.net import NetworkConfig

# Stragglers present: Δ's value is straggler mitigation.
NETWORK = NetworkConfig(straggler_prob=0.03, straggler_scale_us=25.0)


def _measure(k, r, delta, label, seed=13):
    hydra = build_hydra_cluster(
        machines=24, k=k, r=r, delta=delta, seed=seed, network=NETWORK
    )
    return measure_latency(
        hydra.remote_memory(0), hydra.sim, label=label,
        n_pages=48, writes=300, reads=300, seed=seed,
    )


def test_fig12a_read_latency_vs_k(benchmark):
    ks = (1, 2, 4, 8, 16)
    results = benchmark.pedantic(
        lambda: {k: _measure(k, 2, 1, f"k={k}") for k in ks},
        rounds=1, iterations=1,
    )
    rows = [[k, r.read.p50, r.read.p99] for k, r in results.items()]
    text = banner("Figure 12a — read latency vs k (r=2, Δ=1)") + "\n"
    text += format_table(["k", "read p50 (us)", "read p99 (us)"], rows)
    write_report("fig12a_k_sweep", text)

    # k=1 -> k=2 parallelism win; very large k deteriorates again.
    assert results[2].read.p50 < results[1].read.p50
    assert results[16].read.p50 > results[2].read.p50
    benchmark.extra_info["p50_k2"] = round(results[2].read.p50, 2)
    benchmark.extra_info["p50_k16"] = round(results[16].read.p50, 2)


def test_fig12b_read_latency_vs_delta(benchmark):
    deltas = (0, 1, 2, 3)
    results = benchmark.pedantic(
        lambda: {d: _measure(8, 3, d, f"delta={d}") for d in deltas},
        rounds=1, iterations=1,
    )
    rows = [[d, r.read.p50, r.read.p99] for d, r in results.items()]
    text = banner("Figure 12b — read latency vs Δ (k=8, r=3)") + "\n"
    text += format_table(["delta", "read p50 (us)", "read p99 (us)"], rows)
    write_report("fig12b_delta_sweep", text)

    # One extra read slashes the tail...
    assert results[1].read.p99 < 0.7 * results[0].read.p99
    # ...further reads show diminishing returns on the tail.
    gain_01 = results[0].read.p99 - results[1].read.p99
    gain_13 = results[1].read.p99 - results[3].read.p99
    assert gain_13 < gain_01
    benchmark.extra_info["p99_delta0"] = round(results[0].read.p99, 2)
    benchmark.extra_info["p99_delta1"] = round(results[1].read.p99, 2)


def test_fig12c_write_latency_vs_r(benchmark):
    rs = (1, 2, 3, 4)
    results = benchmark.pedantic(
        lambda: {r: _measure(8, r, min(1, r), f"r={r}") for r in rs},
        rounds=1, iterations=1,
    )
    rows = [[r, res.write.p50, res.write.p99] for r, res in results.items()]
    text = banner("Figure 12c — write latency vs r (k=8)") + "\n"
    text += format_table(["r", "write p50 (us)", "write p99 (us)"], rows)
    write_report("fig12c_r_sweep", text)

    # Asynchronous encoding keeps the median essentially flat across r.
    medians = [res.write.p50 for res in results.values()]
    assert max(medians) < 1.6 * min(medians)
    benchmark.extra_info["p50_r1"] = round(results[1].write.p50, 2)
    benchmark.extra_info["p50_r4"] = round(results[4].write.p50, 2)
