"""Figure 13: graph-analytics completion times (PageRank).

Paper shapes: PowerGraph's locality-friendly engine is nearly transparent
to remote memory (completion barely grows at 75/50% fits); GraphX
thrashes and slows substantially. Hydra tracks replication closely at
every fit.
"""

import pytest
from conftest import write_report

from repro.harness import banner, format_table, run_app

FITS = (1.0, 0.75, 0.5)
ENGINES = ("powergraph", "graphx")


def test_fig13_graph_completion(benchmark):
    def run():
        results = {}
        for engine in ENGINES:
            for backend in ("hydra", "replication"):
                for fit in FITS:
                    results[(engine, backend, fit)] = run_app(
                        backend, engine, fit=fit, machines=12,
                        n_pages=300, seed=13,
                    )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for engine in ENGINES:
        for backend in ("hydra", "replication"):
            rows.append(
                [engine, backend]
                + [results[(engine, backend, fit)].completion_us / 1e3 for fit in FITS]
            )
    text = banner("Figure 13 — PageRank completion time (ms)") + "\n"
    text += format_table(
        ["engine", "backend", "100% fit", "75% fit", "50% fit"], rows
    )
    write_report("fig13_graph", text)

    for engine in ENGINES:
        hydra_100 = results[(engine, "hydra", 1.0)].completion_us
        hydra_50 = results[(engine, "hydra", 0.5)].completion_us
        repl_50 = results[(engine, "replication", 0.5)].completion_us
        # Hydra tracks replication at constrained memory (within 25%).
        assert hydra_50 < 1.25 * repl_50
        assert hydra_50 >= hydra_100  # paging can only slow things down

    # GraphX suffers much more from memory constraints than PowerGraph.
    def slowdown(engine):
        return (
            results[(engine, "hydra", 0.5)].completion_us
            / results[(engine, "hydra", 1.0)].completion_us
        )

    assert slowdown("graphx") > slowdown("powergraph")
    benchmark.extra_info["powergraph_slowdown_50"] = round(slowdown("powergraph"), 2)
    benchmark.extra_info["graphx_slowdown_50"] = round(slowdown("graphx"), 2)
