"""Figure 8: probability of data loss under a correlated failure event
(5% of a 1000-machine cluster) for different (k, r), vs replication.

Paper anchors: (8+2) ~ 1.4% (comparable to the 2.07% annual disk failure
rate), 2x replication ~ 0.25%, and (8+3) comparable to replication at
1.375x overhead. Our exact hypergeometric model reproduces the shape; see
EXPERIMENTS.md for the (8+2) absolute-value note.
"""

from conftest import write_report

from repro.analysis import (
    data_loss_probability,
    replication_loss_probability,
    simulate_data_loss,
)
from repro.harness import banner, format_table
from repro.sim import RandomSource

MACHINES = 1000
FAILURE_FRACTION = 0.05


def test_fig08_data_loss(benchmark):
    def run():
        varying_r = [
            ("8+%d" % r, data_loss_probability(8, r, MACHINES, FAILURE_FRACTION))
            for r in (1, 2, 3, 4)
        ]
        varying_k = [
            ("%d+2" % k, data_loss_probability(k, 2, MACHINES, FAILURE_FRACTION))
            for k in (2, 4, 8, 16)
        ]
        replication = replication_loss_probability(2, MACHINES, FAILURE_FRACTION)
        monte_carlo = simulate_data_loss(
            8, 2, MACHINES, FAILURE_FRACTION, trials=30000, rng=RandomSource(8)
        )
        return varying_r, varying_k, replication, monte_carlo

    varying_r, varying_k, replication, monte_carlo = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    text = banner("Figure 8 — P(data loss), 5% correlated failures, N=1000") + "\n"
    text += "(a) parity sweep (k=8):\n"
    text += format_table(
        ["code", "P(loss)"], [[c, f"{p:.4%}"] for c, p in varying_r]
    )
    text += "\n\n(b) data-split sweep (r=2):\n"
    text += format_table(
        ["code", "P(loss)"], [[c, f"{p:.4%}"] for c, p in varying_k]
    )
    text += f"\n\n2x replication: {replication:.4%}"
    text += f"\nMonte-Carlo check for (8+2): {monte_carlo:.4%}"
    write_report("fig08_data_loss", text)

    # Shape assertions from the paper's discussion:
    r_probs = [p for _c, p in varying_r]
    assert r_probs == sorted(r_probs, reverse=True)  # more parity helps
    k_probs = [p for _c, p in varying_k]
    assert k_probs == sorted(k_probs)  # more data splits hurt
    p_82 = dict(varying_r)["8+2"]
    p_83 = dict(varying_r)["8+3"]
    assert replication < p_82  # replication is safer than (8+2)...
    assert p_83 < 3 * replication  # ...but (8+3) is comparable at 1.375x
    exact = data_loss_probability(8, 2, MACHINES, FAILURE_FRACTION)
    assert abs(monte_carlo - exact) < 0.35 * exact
    benchmark.extra_info["p_loss_8_2"] = f"{p_82:.4%}"
    benchmark.extra_info["p_loss_replication"] = f"{replication:.4%}"
