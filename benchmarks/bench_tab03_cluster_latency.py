"""Table 3: per-workload operation latencies in the 50-machine cluster
experiment (p50 / p99 for SSD backup, Hydra, replication).

Paper shape: the dramatic differences are in the *tails at constrained
fits* — SSD backup's p99 explodes (9,912-22,828 ms rows in the paper)
while Hydra and replication stay flat.
"""

from conftest import write_report

from repro.harness import banner, format_table

WORKLOADS = ("voltdb", "etc", "sys")
FITS = (1.0, 0.75, 0.5)
BACKENDS = ("ssd_backup", "hydra", "replication")


def test_tab03_cluster_latency(benchmark, cluster_runs):
    results = benchmark.pedantic(lambda: cluster_runs, rounds=1, iterations=1)
    rows = []
    for workload in WORKLOADS:
        for fit in FITS:
            row = [workload, f"{fit:.0%}"]
            for pct in (50, 99):
                for backend in BACKENDS:
                    value = results[backend].latency_percentile(workload, fit, pct)
                    row.append(f"{value / 1e3:.2f}" if value else "-")
            rows.append(row)
    text = banner("Table 3 — cluster-experiment op latency (ms)") + "\n"
    text += format_table(
        ["workload", "fit",
         "p50 SSD", "p50 HYD", "p50 REP",
         "p99 SSD", "p99 HYD", "p99 REP"],
        rows,
    )
    write_report("tab03_cluster_latency", text)

    # The paper's signature blowup is on the page-heavy workload: SSD
    # backup's constrained-fit tail explodes while Hydra stays in
    # replication's league. (The GET-dominant memcached mixes barely
    # page at this scale, so their tails stay flat for everyone.)
    ssd_p99 = results["ssd_backup"].latency_percentile("voltdb", 0.5, 99)
    hyd_p99 = results["hydra"].latency_percentile("voltdb", 0.5, 99)
    rep_p99 = results["replication"].latency_percentile("voltdb", 0.5, 99)
    assert ssd_p99 > 1.8 * hyd_p99
    assert hyd_p99 < 2 * rep_p99
    for workload in WORKLOADS:
        hyd = results["hydra"].latency_percentile(workload, 0.5, 99)
        rep = results["replication"].latency_percentile(workload, 0.5, 99)
        assert hyd < 3 * rep
    benchmark.extra_info["voltdb_p99_ssd_over_hydra"] = round(
        ssd_p99 / hyd_p99, 1
    )
