"""Figure 17: cluster-wide memory load distribution (50 machines,
250 containers).

Paper numbers: Hydra cuts the memory-usage variation from 18.5% (SSD
backup) / 12.9% (replication) to 5.9%, and the max/min utilization ratio
from 6.92x / 2.77x to 1.74x, by spreading fine-grained (k + r)-way splits
with batch placement.
"""

import numpy as np
from conftest import write_report

from repro.harness import banner, format_table


def test_fig17_memory_load_distribution(benchmark, cluster_runs):
    results = benchmark.pedantic(lambda: cluster_runs, rounds=1, iterations=1)
    rows = []
    for backend, run in results.items():
        usage_gib = run.machine_mean_usage / run.total_memory_bytes
        rows.append(
            [
                backend,
                f"{run.usage_variation * 100:.1f}%",
                f"{run.usage_imbalance:.2f}x",
                f"{run.min_utilization * 100:.1f}%",
                f"{np.mean(usage_gib) * 100:.1f}%",
            ]
        )
    text = banner("Figure 17 — memory load distribution across 50 machines") + "\n"
    text += format_table(
        ["backend", "usage variation (std/mean)", "max/min ratio",
         "min utilization", "mean utilization"],
        rows,
    )
    write_report("fig17_cluster_load", text)

    hydra = results["hydra"]
    ssd = results["ssd_backup"]
    replication = results["replication"]
    # Hydra's fine-grained batch placement balances best: lowest max/min
    # skew and the best-fed minimum machine (the paper's 'better exploits
    # unused memory in under-utilized machines').
    assert hydra.usage_imbalance < ssd.usage_imbalance
    assert hydra.usage_imbalance < replication.usage_imbalance
    assert hydra.min_utilization > ssd.min_utilization
    assert hydra.min_utilization >= replication.min_utilization
    # Variation: Hydra clearly beats the coarse SSD-backup placement.
    # (Replication's 2x copies pour twice the filler into the valleys,
    # which flatters its std/mean at this scale — see EXPERIMENTS.md.)
    assert hydra.usage_variation < ssd.usage_variation
    benchmark.extra_info["hydra_imbalance"] = round(hydra.usage_imbalance, 2)
    benchmark.extra_info["ssd_imbalance"] = round(ssd.usage_imbalance, 2)
    benchmark.extra_info["replication_imbalance"] = round(
        replication.usage_imbalance, 2
    )
