"""Table 2: application throughput and latency, Hydra vs replication, at
the 100%/75%/50% memory fits.

Paper shapes: Hydra within a few percent of replication everywhere
(0.82-0.97x throughput of the all-in-memory case at 50%), with
replication's only advantage bought at 1.6x higher memory overhead.
"""

from conftest import write_report

from repro.harness import banner, format_table, run_app

WORKLOADS = ("voltdb", "etc", "sys")
FITS = (1.0, 0.75, 0.5)
BACKENDS = ("hydra", "replication")


def test_tab02_app_performance(benchmark):
    def run():
        results = {}
        for workload in WORKLOADS:
            for backend in BACKENDS:
                for fit in FITS:
                    results[(workload, backend, fit)] = run_app(
                        backend, workload, fit=fit, machines=12, seed=2,
                        n_pages=1500, total_ops=1500,
                    )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for workload in WORKLOADS:
        for fit in FITS:
            hyd = results[(workload, "hydra", fit)]
            rep = results[(workload, "replication", fit)]
            rows.append(
                [
                    workload,
                    f"{fit:.0%}",
                    f"{hyd.throughput_ops_per_sec / 1e3:.1f}",
                    f"{rep.throughput_ops_per_sec / 1e3:.1f}",
                    f"{hyd.op_latency.p50:.0f}",
                    f"{rep.op_latency.p50:.0f}",
                    f"{hyd.op_latency.p99:.0f}",
                    f"{rep.op_latency.p99:.0f}",
                ]
            )
    text = banner("Table 2 — app performance, Hydra (HYD) vs replication (REP)") + "\n"
    text += format_table(
        ["workload", "fit", "HYD kops/s", "REP kops/s",
         "HYD p50 us", "REP p50 us", "HYD p99 us", "REP p99 us"],
        rows,
    )
    write_report("tab02_app_perf", text)

    for workload in WORKLOADS:
        # Hydra tracks replication at every fit (within 15%).
        for fit in FITS:
            hyd = results[(workload, "hydra", fit)].throughput_ops_per_sec
            rep = results[(workload, "replication", fit)].throughput_ops_per_sec
            assert hyd > 0.85 * rep
        # Constrained memory costs something but not an order of magnitude.
        hyd_100 = results[(workload, "hydra", 1.0)].throughput_ops_per_sec
        hyd_50 = results[(workload, "hydra", 0.5)].throughput_ops_per_sec
        assert hyd_50 > 0.4 * hyd_100
    benchmark.extra_info["voltdb_hydra_50_vs_100"] = round(
        results[("voltdb", "hydra", 0.5)].throughput_ops_per_sec
        / results[("voltdb", "hydra", 1.0)].throughput_ops_per_sec,
        3,
    )
