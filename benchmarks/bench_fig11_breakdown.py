"""Figure 11: latency breakdown of Hydra's data-path optimizations.

Starting from the naive erasure-coded data path, enable the §4.2
techniques cumulatively:

    none -> +run-to-completion -> +in-place coding -> +late binding
         -> +asynchronous encoding (= full Hydra)

Paper shapes: run-to-completion halves the median; in-place coding
removes copy costs; late binding cuts the *read tail* (median may rise
slightly from the extra read); async encoding cuts the write median.
"""

from conftest import write_report

from repro.core import DatapathConfig
from repro.harness import banner, build_hydra_cluster, format_table, measure_latency
from repro.net import NetworkConfig

STEPS = [
    ("none", dict(run_to_completion=False, in_place_coding=False,
                  late_binding=False, async_encoding=False)),
    ("+run-to-completion", dict(run_to_completion=True, in_place_coding=False,
                                late_binding=False, async_encoding=False)),
    ("+in-place coding", dict(run_to_completion=True, in_place_coding=True,
                              late_binding=False, async_encoding=False)),
    ("+late binding", dict(run_to_completion=True, in_place_coding=True,
                           late_binding=True, async_encoding=False)),
    ("+async encoding", dict(run_to_completion=True, in_place_coding=True,
                             late_binding=True, async_encoding=True)),
]

# A mildly noisy network so late binding has stragglers to dodge.
NETWORK = NetworkConfig(straggler_prob=0.03, straggler_scale_us=25.0)


def _measure(step_toggles, label):
    hydra = build_hydra_cluster(
        machines=14, k=8, r=2, seed=12,
        datapath=DatapathConfig(**step_toggles),
        network=NETWORK,
    )
    return measure_latency(
        hydra.remote_memory(0), hydra.sim, label=label,
        n_pages=48, writes=400, reads=400, seed=12,
    )


def test_fig11_breakdown(benchmark):
    results = benchmark.pedantic(
        lambda: [(label, _measure(toggles, label)) for label, toggles in STEPS],
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, r.read.p50, r.read.p99, r.write.p50, r.write.p99]
        for label, r in results
    ]
    text = banner("Figure 11 — Hydra data-path latency breakdown (us)") + "\n"
    text += format_table(
        ["optimizations", "read p50", "read p99", "write p50", "write p99"], rows
    )
    write_report("fig11_breakdown", text)

    by_label = dict(results)
    naive = by_label["none"]
    r2c = by_label["+run-to-completion"]
    inplace = by_label["+in-place coding"]
    late = by_label["+late binding"]
    full = by_label["+async encoding"]

    # (1) run-to-completion: large median cut on both paths (§7.1.1: 51%).
    assert r2c.read.p50 < 0.75 * naive.read.p50
    assert r2c.write.p50 < 0.75 * naive.write.p50
    # (2) in-place coding: further median cut (§7.1.1: 28%).
    assert inplace.read.p50 < 0.85 * r2c.read.p50
    # (3) late binding: cuts the read tail; median may rise slightly.
    assert late.read.p99 < 0.75 * inplace.read.p99
    assert late.read.p50 < 1.25 * inplace.read.p50
    # (4) async encoding: cuts the write median (§7.1.1: 38%).
    assert full.write.p50 < 0.8 * late.write.p50
    # End to end: the full data path is several times faster than naive.
    assert full.read.p50 < 0.45 * naive.read.p50

    benchmark.extra_info["naive_read_p50"] = round(naive.read.p50, 2)
    benchmark.extra_info["full_read_p50"] = round(full.read.p50, 2)
