"""Ablation: how many machines should batch placement contact?

§4.4 contacts 2 x (k + r) machines and keeps the least-loaded (k + r).
This ablation sweeps the choice factor on a live cluster (many Resilience
Managers placing ranges concurrently) and measures the resulting slab
imbalance: factor 1 is effectively random placement; factor 2 captures
most of the benefit (the paper's choice); higher factors show diminishing
returns while costing more control-plane messages.
"""

import numpy as np
from conftest import write_report

from repro.cluster import Cluster
from repro.core import HydraConfig, HydraDeployment
from repro.harness import banner, format_table, run_process
from repro.net import NetworkConfig


def _imbalance_with_factor(factor, machines=20, clients=10, ranges_per_client=6,
                           seed=43):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 28,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=seed,
    )
    config = HydraConfig(
        k=4, r=2, delta=1, slab_size_bytes=1 << 20, payload_mode="phantom",
        placement_choice_factor=factor, control_period_us=1e9,
    )
    deployment = HydraDeployment(cluster, config, seed=seed)
    sim = cluster.sim
    pages_per_range = config.pages_per_range

    def client(machine_id):
        rm = deployment.manager(machine_id)
        for range_index in range(ranges_per_client):
            yield rm.write(range_index * pages_per_range)

    def everyone():
        procs = [
            sim.process(client(m), name=f"c{m}") for m in range(clients)
        ]
        yield sim.all_of(procs)

    run_process(sim, sim.process(everyone(), name="all"), until=1e10)
    loads = np.array([len(m.mapped_slabs()) for m in cluster.machines], dtype=float)
    mean = loads.mean()
    return float(loads.max() / mean), int(loads.max()), int(loads.min())


def test_ablation_placement_choices(benchmark):
    factors = (1, 2, 4)
    results = benchmark.pedantic(
        lambda: {f: _imbalance_with_factor(f) for f in factors},
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"{f}x(k+r)", f"{imb:.3f}", hi, lo]
        for f, (imb, hi, lo) in results.items()
    ]
    text = banner("Ablation — batch placement choice factor") + "\n"
    text += format_table(
        ["contacts", "max/mean slabs", "max", "min"], rows
    )
    text += "\n(§4.4 uses 2x(k+r); more contacts give diminishing returns)"
    write_report("ablation_placement", text)

    # More choices balance better; the 1 -> 2 jump is the big one.
    assert results[2][0] <= results[1][0]
    assert results[4][0] <= results[2][0] * 1.1  # diminishing returns
    benchmark.extra_info["imbalance_factor1"] = round(results[1][0], 3)
    benchmark.extra_info["imbalance_factor2"] = round(results[2][0], 3)
