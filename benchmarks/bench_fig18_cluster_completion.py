"""Figure 18: median completion times of the 250 cluster containers.

Paper shapes: at the 100% fit all backends tie (no remote memory in
play); at 75% and 50% the SSD-backup containers slow dramatically while
Hydra stays close to replication at 1.6x lower memory overhead.
"""

from conftest import write_report

from repro.harness import banner, format_table

WORKLOADS = ("voltdb", "etc", "sys")
FITS = (1.0, 0.75, 0.5)


def test_fig18_container_completion(benchmark, cluster_runs):
    results = benchmark.pedantic(lambda: cluster_runs, rounds=1, iterations=1)
    text = banner("Figure 18 — median container completion time (ms)") + "\n"
    for workload in WORKLOADS:
        rows = []
        for backend, run in results.items():
            rows.append(
                [backend]
                + [
                    (run.median_completion_us(workload, fit) or 0) / 1e3
                    for fit in FITS
                ]
            )
        text += f"\n{workload}:\n"
        text += format_table(["backend", "100%", "75%", "50%"], rows) + "\n"
    write_report("fig18_cluster_completion", text.rstrip())

    for workload in WORKLOADS:
        hydra_50 = results["hydra"].median_completion_us(workload, 0.5)
        repl_50 = results["replication"].median_completion_us(workload, 0.5)
        # Hydra tracks replication at the constrained fit.
        assert hydra_50 < 1.35 * repl_50
        # And the in-memory (100%) containers are backend-agnostic.
        hydra_100 = results["hydra"].median_completion_us(workload, 1.0)
        ssd_100 = results["ssd_backup"].median_completion_us(workload, 1.0)
        assert abs(hydra_100 - ssd_100) / ssd_100 < 0.2
    # SSD backup pays for eviction-hit containers: visible in the mean
    # (the affected minority drags it), like the paper's long tails.
    ssd_mean = results["ssd_backup"].mean_completion_us("voltdb", 0.5)
    hydra_mean = results["hydra"].mean_completion_us("voltdb", 0.5)
    assert ssd_mean > 1.1 * hydra_mean
    benchmark.extra_info["voltdb_ssd_over_hydra_mean_50"] = round(
        ssd_mean / hydra_mean, 2
    )
