"""§7.4 'CPU and Network Overhead' + §7.1.2 'Background Slab Regeneration'.

Two numbers from the prose of the evaluation:

* Hydra generated 291 Mbps of RDMA traffic per machine (~0.5 % of the
  56 Gbps fabric), while replication pushed >1 Gbps — the bandwidth cost
  of whole-page copies. Reproduced as bytes-moved per backend for the
  same workload (the ratio is the claim; absolute Mbps depends on the
  op rate).
* Regenerating a 1 GB slab takes ~274 ms: ~54 ms placement hand-off,
  ~170 ms parallel slab reads, ~50 ms decode. Reproduced at the paper's
  own scale constants by timing the regeneration of a fully loaded slab.
"""

from conftest import write_report

from repro.harness import banner, build_pool, format_table, run_process
from repro.sim import RandomSource


def _traffic_for(backend, ops=600, n_pages=200, seed=31):
    cluster, pool = build_pool(backend, machines=12, seed=seed)
    sim = cluster.sim
    rng = RandomSource(seed, f"traffic/{backend}")

    def driver():
        for page in range(n_pages):
            yield pool.write(page)
        for _ in range(ops):
            page = rng.randint(0, n_pages - 1)
            if rng.bernoulli(0.5):
                yield pool.read(page)
            else:
                yield pool.write(page)

    run_process(sim, sim.process(driver(), name="traffic"), until=1e10)
    total_bytes = sum(m.nic.bytes_sent for m in cluster.machines)
    total_ops = n_pages + ops
    return total_bytes / total_ops  # bytes moved per logical page op


def test_network_overhead(benchmark):
    results = benchmark.pedantic(
        lambda: {b: _traffic_for(b) for b in ("hydra", "replication", "direct")},
        rounds=1,
        iterations=1,
    )
    rows = [
        [backend, f"{bytes_per_op:.0f}", f"{bytes_per_op / 4096:.2f}x"]
        for backend, bytes_per_op in results.items()
    ]
    text = banner("§7.4 — network traffic per remote page operation") + "\n"
    text += format_table(["backend", "bytes/op", "vs raw page"], rows)
    text += (
        "\npaper: Hydra 291 Mbps/machine vs replication >1 Gbps "
        "(>2x Hydra's traffic for writes)"
    )
    write_report("overhead_network", text)

    hydra = results["hydra"]
    replication = results["replication"]
    direct = results["direct"]
    # Replication moves ~2x the bytes of the non-resilient baseline on
    # writes; Hydra only 1.25x (+ the Δ extra read) — so clearly less.
    assert hydra < 0.8 * replication
    assert direct < hydra  # resilience is not free, but it is cheap
    benchmark.extra_info["hydra_bytes_per_op"] = round(hydra)
    benchmark.extra_info["replication_bytes_per_op"] = round(replication)


def test_regeneration_breakdown(benchmark):
    """Regenerate a slab at the paper's scale constants and split the
    wall time into hand-off / read / decode phases."""

    def run():
        from repro.harness import build_hydra_cluster

        # Paper scale: 1 GB slab. We load a slab with enough pages that
        # the transfer and decode terms dominate, then scale-check.
        hydra = build_hydra_cluster(
            machines=12, k=8, r=2, seed=32, slab_size_bytes=1 << 22,
            payload_mode="phantom",
        )
        sim = hydra.sim
        rm = hydra.remote_memory(0)
        pages = hydra.deployment.config.pages_per_range

        def driver():
            for page in range(min(pages, 4096)):
                yield rm.write(page)
            victim = rm.space.get(0).handle(0).machine_id
            start = sim.now
            hydra.cluster.machine(victim).fail()
            while rm.events["regenerations"] == 0:
                yield sim.timeout(100.0)
            return sim.now - start

        proc = sim.process(driver(), name="regen")
        run_process(sim, proc, until=1e10)
        return proc.value, rm.events

    elapsed_us, events = benchmark.pedantic(run, rounds=1, iterations=1)
    text = banner("§7.1.2 — background slab regeneration") + "\n"
    text += f"slab regenerated in {elapsed_us / 1000:.2f} ms "
    text += "(paper: 274 ms for 1 GB = hand-off 54 + read 170 + decode 50)\n"
    text += f"events: {dict(events.counts)}"
    write_report("overhead_regeneration", text)

    assert events["regenerations"] == 1
    # Regeneration is milliseconds, not the minutes of a server restart.
    assert elapsed_us < 1_000_000
    benchmark.extra_info["regen_ms"] = round(elapsed_us / 1000, 2)
