"""Figure 10: disaggregated VMM and VFS latency characteristics.

(a) VMM: page-in/page-out latency while paging at 50% fit — Hydra vs the
    Infiniswap-style whole-page path vs replication.
(b) VFS: fio 4 KB random read/write through the remote block device —
    Hydra vs the Remote-Regions-style path vs replication.

Paper shapes: Hydra improves on the whole-page baselines by ~1.8-2.2x at
median and tail; replication gains at most ~1.1-1.2x over Hydra.
"""

from conftest import write_report

from repro.harness import banner, build_pool, format_table, run_process
from repro.sim import RandomSource, summarize
from repro.vfs import RemoteBlockDevice
from repro.vmm import PagedMemory
from repro.workloads import FioWorkload

BACKENDS = ("direct", "replication", "hydra")
N_PAGES = 400


def _quiet(cluster):
    # Figure 10 measures the *baseline* ("in the absence of
    # uncertainties", §7.1.1): no straggler events.
    cluster.fabric.config.straggler_prob = 0.0
    return cluster


def _vmm_latencies(backend):
    cluster, pool = build_pool(backend, machines=12, seed=10)
    _quiet(cluster)
    sim = cluster.sim
    pager = PagedMemory(pool, resident_pages=N_PAGES // 2)
    run_process(sim, pager.preload(range(N_PAGES)), until=1e10)
    rng = RandomSource(10, f"fig10/{backend}")

    def driver():
        for _ in range(800):
            page = rng.randint(0, N_PAGES - 1)
            yield pager.access(page, write=rng.bernoulli(0.3))

    run_process(sim, sim.process(driver(), name="vmm-driver"), until=1e10)
    return (
        summarize(pool.read_latency.samples, name=f"{backend}.pagein"),
        summarize(pool.write_latency.samples, name=f"{backend}.pageout"),
    )


def _vfs_latencies(backend):
    cluster, pool = build_pool(backend, machines=12, seed=11)
    _quiet(cluster)
    sim = cluster.sim
    device = RemoteBlockDevice(pool)
    fio = FioWorkload(
        device, RandomSource(11, f"fio/{backend}"), n_blocks=N_PAGES,
        read_fraction=0.5, queue_depth=4,
    )
    run_process(sim, fio.prefill(N_PAGES), until=1e10)
    run_process(sim, fio.run(total_ops=1200), until=1e10)
    return (
        summarize(device.read_latency.samples, name=f"{backend}.read"),
        summarize(device.write_latency.samples, name=f"{backend}.write"),
    )


def test_fig10a_vmm_latency(benchmark):
    results = benchmark.pedantic(
        lambda: {b: _vmm_latencies(b) for b in BACKENDS}, rounds=1, iterations=1
    )
    rows = [
        [b, r.p50, r.p99, w.p50, w.p99]
        for b, (r, w) in results.items()
    ]
    text = banner("Figure 10a — disaggregated VMM latency (us)") + "\n"
    text += format_table(
        ["backend", "page-in p50", "page-in p99", "page-out p50", "page-out p99"],
        rows,
    )
    write_report("fig10a_vmm_latency", text)

    hydra_in, hydra_out = results["hydra"]
    direct_in, direct_out = results["direct"]  # Infiniswap's data path
    repl_in, _repl_out = results["replication"]
    assert hydra_in.p50 < direct_in.p50  # Hydra beats whole-page page-in
    assert hydra_out.p50 < direct_out.p50
    assert repl_in.p50 > 0.8 * hydra_in.p50  # replication gains are small
    benchmark.extra_info["hydra_pagein_p50"] = round(hydra_in.p50, 2)
    benchmark.extra_info["infiniswap_pagein_p50"] = round(direct_in.p50, 2)


def test_fig10b_vfs_latency(benchmark):
    results = benchmark.pedantic(
        lambda: {b: _vfs_latencies(b) for b in BACKENDS}, rounds=1, iterations=1
    )
    rows = [
        [b, r.p50, r.p99, w.p50, w.p99]
        for b, (r, w) in results.items()
    ]
    text = banner("Figure 10b — disaggregated VFS latency, fio 4K (us)") + "\n"
    text += format_table(
        ["backend", "read p50", "read p99", "write p50", "write p99"], rows
    )
    write_report("fig10b_vfs_latency", text)

    hydra_read, hydra_write = results["hydra"]
    rr_read, rr_write = results["direct"]  # Remote Regions' data path
    assert hydra_read.p50 < rr_read.p50
    assert hydra_write.p50 < rr_write.p50
    assert hydra_read.p99 < rr_read.p99
    benchmark.extra_info["hydra_read_p50"] = round(hydra_read.p50, 2)
    benchmark.extra_info["remote_regions_read_p50"] = round(rr_read.p50, 2)
