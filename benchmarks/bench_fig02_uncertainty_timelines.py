"""Figure 2: TPC-C/VoltDB throughput timelines under the four §2.2
uncertainties, for the two incumbent resilience schemes.

Paper shapes: SSD backup collapses under remote failure (2a), corruption
(2b) and prolonged bursts (2d), and sags under background load (2c);
in-memory replication rides through all four.
"""

import pytest
from conftest import write_report

from repro.harness import ascii_timeline, banner, run_uncertainty_scenario

SCENARIOS = ("failure", "corruption", "background", "burst")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig02_timeline(benchmark, scenario):
    def run():
        return {
            backend: run_uncertainty_scenario(backend, scenario, seed=3)
            for backend in ("ssd_backup", "replication")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = banner(f"Figure 2 ({scenario}) — VoltDB-like @50% fit") + "\n"
    series = {
        backend: (r.times_us, r.throughput_ops) for backend, r in results.items()
    }
    text += ascii_timeline(series) + "\n"
    for backend, r in results.items():
        text += (
            f"{backend:>12}: drop after event = {r.throughput_drop() * 100:+.1f}%  "
            f"op p50/p99 = {r.op_latency.p50 / 1e3:.2f}/{r.op_latency.p99 / 1e3:.2f} ms\n"
        )
    write_report(f"fig02_{scenario}", text.rstrip())

    ssd = results["ssd_backup"]
    replication = results["replication"]
    benchmark.extra_info["ssd_drop"] = round(ssd.throughput_drop(), 3)
    benchmark.extra_info["replication_drop"] = round(replication.throughput_drop(), 3)
    # Replication rides through every scenario far better than SSD backup.
    if scenario in ("failure", "corruption", "burst"):
        assert ssd.throughput_drop() > 0.3
        assert replication.throughput_drop() < ssd.throughput_drop() - 0.2
    else:  # background: magnitudes are milder; ordering shows in tails
        assert ssd.op_latency.p99 >= replication.op_latency.p99
