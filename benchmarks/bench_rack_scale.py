"""Rack-scale sweep: §5's load-balance and data-loss analyses at 1000
machines on the packed-array data plane (docs/SCALING.md).

The report is a pure function of the config seed, so this shard is
byte-identical under any ``repro bench -j N`` worker count. CI's
bench-smoke job sets ``REPRO_RACK_SCALE=smoke`` to run the 200-machine
configuration instead (same assertions, ≤60 s budget).
"""

import os

from conftest import write_report

from repro.harness.rack_scale import (
    RackScaleConfig,
    format_rack_scale,
    run_rack_scale,
)


def _config() -> RackScaleConfig:
    if os.environ.get("REPRO_RACK_SCALE") == "smoke":
        return RackScaleConfig.smoke()
    return RackScaleConfig()


def test_rack_scale_sweep(benchmark):
    config = _config()
    result = benchmark.pedantic(lambda: run_rack_scale(config), rounds=1, iterations=1)

    write_report("rack_scale", format_rack_scale(result))

    assert result["config"]["machines"] == config.machines
    assert result["config"]["logical_pages"] == config.logical_pages

    # Placement: batch placement must beat uniform random on slab
    # imbalance and achieve fully rack-distinct ranges (racks >= k+r).
    placement = result["placement"]
    assert placement["hydra"]["slab_imbalance"] < placement["random"]["slab_imbalance"]
    assert placement["hydra"]["rack_distinct"] == 1.0
    assert placement["dchoices"]["rack_distinct"] < 1.0

    # Data loss: the empirical campaign over the placed matrix tracks the
    # exact hypergeometric value (machine failures are rack-oblivious, so
    # every policy should land near it).
    loss = result["data_loss"]
    analytic = loss["analytic_p_range_loss"]
    for policy, row in loss["empirical"].items():
        assert abs(row["p_range_loss"] - analytic) < max(3e-3, 3 * analytic), policy

    # Rack blast: rack-distinct placement loses nothing while failed
    # racks <= r; rack-oblivious placement already loses ranges at 1.
    blast = loss["rack_blast"]
    assert blast["hydra"][str(config.r)] == 0.0
    assert blast["hydra"]["1"] == 0.0
    assert blast["dchoices"]["1"] > 0.0
    assert blast["hydra"][str(config.r + 1)] > 0.0  # r+1 racks can exceed parity

    # Memory model: packed metadata stays under 1 KiB per machine and an
    # order of magnitude below the object model.
    memory = result["memory"]
    assert memory["table_bytes"] + memory["topology_bytes"] < config.machines * 1024
    assert memory["table_bytes"] * 10 <= memory["object_model_estimate_bytes"]

    # Engine traffic: the calendar scheduler carried the completion storm.
    engine = result["engine"]
    assert engine["events"] >= config.engine_events
    assert engine["sim_now_us"] > 0

    benchmark.extra_info["machines"] = config.machines
    benchmark.extra_info["logical_pages"] = config.logical_pages
    benchmark.extra_info["hydra_imbalance"] = placement["hydra"]["slab_imbalance"]
    benchmark.extra_info["engine_events_per_sec"] = engine["events_per_sec"]
    benchmark.extra_info["wall_seconds"] = result["wall_seconds"]
