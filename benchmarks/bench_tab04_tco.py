"""Table 4: three-year TCO savings of leasing 30% stranded memory.

Paper numbers (percent of machine cost): Hydra 6.3 / 8.8 / 5.1 and
replication 3.3 / 5.0 / 2.8 on Google / Amazon / Microsoft pricing.
This model is closed-form, so the reproduction should match to the
rounding in the paper.
"""

import pytest
from conftest import write_report

from repro.analysis import tco_table
from repro.harness import banner, format_table

PAPER = {
    "Hydra": {"Google": 6.3, "Amazon": 8.8, "Microsoft": 5.1},
    "Replication": {"Google": 3.3, "Amazon": 5.0, "Microsoft": 2.8},
}


def test_tab04_tco(benchmark):
    table = benchmark.pedantic(
        lambda: tco_table({"Hydra": 1.25, "Replication": 2.0}),
        rounds=1,
        iterations=1,
    )
    rows = [
        [scheme] + [f"{table[scheme][p]:.1f}%" for p in ("Google", "Amazon", "Microsoft")]
        for scheme in ("Hydra", "Replication")
    ]
    text = banner("Table 4 — 3-year TCO savings, 30% leveraged memory") + "\n"
    text += format_table(["scheme", "Google", "Amazon", "Microsoft"], rows)
    text += "\npaper: Hydra 6.3/8.8/5.1, Replication 3.3/5.0/2.8"
    write_report("tab04_tco", text)

    for scheme, providers in PAPER.items():
        for provider, expected in providers.items():
            assert table[scheme][provider] == pytest.approx(expected, abs=0.25)
    benchmark.extra_info["hydra_google"] = round(table["Hydra"]["Google"], 2)
