"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and

* prints the rows/series to stdout (visible with ``pytest -s``),
* writes them to ``benchmarks/results/<name>.txt`` so the artifacts
  survive pytest's capture,
* attaches headline numbers to ``benchmark.extra_info`` so they appear in
  pytest-benchmark's JSON output.

The 50-machine cluster experiment backing Figs 17-18 and Table 3 is run
once per backend and shared across the three benchmarks via a
session-scoped fixture.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, text: str) -> Path:
    """Persist a benchmark's table/figure text under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
    return path


@pytest.fixture(scope="session")
def cluster_runs():
    """The §7.4 cluster experiment, once per backend (Figs 17-18, Tab 3)."""
    from repro.harness import ClusterExperiment

    runs = {}
    for backend in ("ssd_backup", "hydra", "replication"):
        experiment = ClusterExperiment(
            backend,
            machines=50,
            containers=250,
            pages_per_container=400,
            ops_per_container=150,
            seed=11,
        )
        runs[backend] = experiment.run()
    return runs
