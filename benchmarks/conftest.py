"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and

* prints the rows/series to stdout (visible with ``pytest -s``),
* writes them to ``benchmarks/results/<name>.txt`` so the artifacts
  survive pytest's capture,
* attaches headline numbers to ``benchmark.extra_info`` so they appear in
  pytest-benchmark's JSON output.

The 50-machine cluster experiment backing Figs 17-18 and Table 3 is run
once per backend and shared across the three benchmarks via a
session-scoped fixture.
"""

import hashlib
import os
from pathlib import Path

import pytest

# ``repro bench`` points shards at a scratch results dir via this env var
# (the determinism gate test diffs the files from two runs byte for byte).
RESULTS_DIR = Path(
    os.environ.get("REPRO_BENCH_RESULTS_DIR") or Path(__file__).parent / "results"
)

# (name, sha256) of every report written by this process — read back by
# ``repro.parallel.bench`` after an in-worker pytest run so each shard can
# attribute exactly the artifacts it produced.
WRITTEN_REPORTS = []


def write_report(name: str, text: str) -> Path:
    """Persist a benchmark's table/figure text under benchmarks/results."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    data = text + "\n"
    path.write_text(data)
    WRITTEN_REPORTS.append((name, hashlib.sha256(data.encode()).hexdigest()))
    print(text)
    return path


@pytest.fixture(scope="session")
def cluster_runs():
    """The §7.4 cluster experiment, once per backend (Figs 17-18, Tab 3)."""
    from repro.harness.fixtures import run_cluster_experiments

    return run_cluster_experiments()
