"""Figure 9: simulated load imbalance vs cluster size.

Paper's claim (§5.3): splitting each slab k ways *and* batch-placing the
pieces on the least-loaded k of d sampled machines (k=2, d=4) beats plain
power-of-d-choices (d=4), which beats d=2, which beats uniform random —
and the gap grows with cluster size.
"""

from conftest import write_report

from repro.analysis import (
    FOUR_CHOICES,
    HYDRA_K2_D4,
    RANDOM,
    TWO_CHOICES,
    imbalance_curve,
)
from repro.harness import banner, format_table
from repro.sim import RandomSource

MACHINE_COUNTS = (100, 300, 1000, 3000)
POLICIES = (RANDOM, TWO_CHOICES, FOUR_CHOICES, HYDRA_K2_D4)


def test_fig09_load_balance(benchmark):
    curves = benchmark.pedantic(
        lambda: imbalance_curve(
            POLICIES, MACHINE_COUNTS, RandomSource(9), trials=3,
            balls_per_machine=8,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [str(n)] + [f"{curves[p.name][i]:.3f}" for p in POLICIES]
        for i, n in enumerate(MACHINE_COUNTS)
    ]
    text = banner("Figure 9 — max/mean load imbalance vs cluster size") + "\n"
    text += format_table(["machines"] + [p.name for p in POLICIES], rows)
    write_report("fig09_load_balance", text)

    for i in range(len(MACHINE_COUNTS)):
        random_i = curves["random"][i]
        d2 = curves["d=2"][i]
        d4 = curves["d=4"][i]
        hydra = curves["k=2,d=4"][i]
        # Paper ordering; splitting can tie plain d=4 at large n (the two
        # asymptotic bounds coincide for k=2, d=4) but never loses.
        assert hydra <= d4 < d2 < random_i
    mean = lambda name: sum(curves[name]) / len(MACHINE_COUNTS)
    assert mean("k=2,d=4") < mean("d=4")  # strictly better on average
    benchmark.extra_info["hydra_at_3000"] = round(curves["k=2,d=4"][-1], 3)
    benchmark.extra_info["random_at_3000"] = round(curves["random"][-1], 3)
