"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline environment lacks the `wheel` package, which PEP 660 editable
installs require; this file keeps `setup.py develop` working there. All
project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
